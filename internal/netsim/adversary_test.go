package netsim

import (
	"math/rand"
	"testing"

	"hbh/internal/addr"
	"hbh/internal/eventsim"
	"hbh/internal/packet"
	"hbh/internal/topology"
)

func advControlPacket(dst addr.Addr) *packet.Tree {
	return &packet.Tree{
		Header: packet.Header{
			Proto: packet.ProtoHBH, Type: packet.TypeTree,
			Channel: addr.Channel{S: addr.MustParse("10.9.0.1"), G: addr.GroupAddr(0)},
			Dst:     dst,
		},
		R: dst,
	}
}

// TestAdversaryControlOnly asserts the adversary's loss never touches
// data packets — the invariant that keeps delivery measurements
// meaningful under an active adversary.
func TestAdversaryControlOnly(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.SetAdversary(Adversary{Loss: 0.999999, RNG: rand.New(rand.NewSource(1))})

	delivered := 0
	net.Node(1).SetDeliver(func(ProtoNode, packet.Message) { delivered++ })
	net.Node(0).SendUnicast(advControlPacket(g.Node(1).Addr))
	net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (data only)", delivered)
	}
	if got := net.Stats().AdvLossDrops; got != 1 {
		t.Errorf("AdvLossDrops = %d, want 1", got)
	}
}

// TestAdversaryScheduleReproducible asserts two same-seeded adversary
// runs over the same traffic produce bit-identical drop/dup schedules
// and delivery timings.
func TestAdversaryScheduleReproducible(t *testing.T) {
	run := func() (Stats, []eventsim.Time) {
		g := topology.Line(3, false)
		net, sim := build(g)
		net.SetAdversary(Adversary{
			Loss: 0.2, BurstStart: 0.05, BurstLen: 3,
			MaxJitter: 7, Duplicate: 0.15,
			RNG: rand.New(rand.NewSource(99)),
		})
		var arrivals []eventsim.Time
		net.Node(2).SetDeliver(func(ProtoNode, packet.Message) {
			arrivals = append(arrivals, sim.Now())
		})
		for i := 0; i < 500; i++ {
			net.Node(0).SendUnicast(advControlPacket(g.Node(2).Addr))
		}
		if err := sim.RunAll(); err != nil {
			t.Fatal(err)
		}
		return net.Stats(), arrivals
	}
	s1, a1 := run()
	s2, a2 := run()
	if s1 != s2 {
		t.Fatalf("same-seed adversary stats diverged:\n  %+v\n  %+v", s1, s2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("arrival counts diverged: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d diverged: %v vs %v", i, a1[i], a2[i])
		}
	}
	if s1.AdvLossDrops == 0 || s1.AdvDups == 0 {
		t.Errorf("schedule exercised nothing: %+v", s1)
	}
}

// TestAdversaryZeroEquivalentToAbsent asserts installing an all-zero
// adversary is bit-identical to never installing one (the
// flag-invariance guarantee behind the committed A-figure tables), and
// that a zeroed adversary uninstalls an active one.
func TestAdversaryZeroEquivalentToAbsent(t *testing.T) {
	run := func(setup func(*Network)) (Stats, int) {
		g := topology.Line(3, false)
		net, sim := build(g)
		setup(net)
		delivered := 0
		net.Node(2).SetDeliver(func(ProtoNode, packet.Message) { delivered++ })
		for i := 0; i < 200; i++ {
			net.Node(0).SendUnicast(advControlPacket(g.Node(2).Addr))
			net.Node(0).SendUnicast(dataTo(g.Node(2).Addr, uint32(i)))
		}
		if err := sim.RunAll(); err != nil {
			t.Fatal(err)
		}
		return net.Stats(), delivered
	}
	sAbsent, dAbsent := run(func(*Network) {})
	sZero, dZero := run(func(n *Network) { n.SetAdversary(Adversary{}) })
	sCleared, dCleared := run(func(n *Network) {
		n.SetAdversary(Adversary{Loss: 0.5, RNG: rand.New(rand.NewSource(1))})
		n.SetAdversary(Adversary{})
	})
	if sAbsent != sZero || dAbsent != dZero {
		t.Errorf("zero adversary != absent adversary:\n  %+v (%d)\n  %+v (%d)",
			sAbsent, dAbsent, sZero, dZero)
	}
	if sAbsent != sCleared || dAbsent != dCleared {
		t.Errorf("cleared adversary != absent adversary:\n  %+v (%d)\n  %+v (%d)",
			sAbsent, dAbsent, sCleared, dCleared)
	}
	if sAbsent.AdvLossDrops != 0 || sAbsent.AdvDups != 0 {
		t.Errorf("baseline run moved adversary counters: %+v", sAbsent)
	}
}

// TestAdversaryLossRate checks the uniform loss knob statistically.
func TestAdversaryLossRate(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.SetAdversary(Adversary{Loss: 0.25, RNG: rand.New(rand.NewSource(7))})
	const n = 4000
	got := 0
	net.Node(1).SetDeliver(func(ProtoNode, packet.Message) { got++ })
	for i := 0; i < n; i++ {
		net.Node(0).SendUnicast(advControlPacket(g.Node(1).Addr))
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	rate := 1 - float64(got)/n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("observed loss rate %.3f, want ~0.25", rate)
	}
	if int(net.Stats().AdvLossDrops) != n-got {
		t.Errorf("AdvLossDrops = %d, want %d", net.Stats().AdvLossDrops, n-got)
	}
}

// TestAdversaryBurstLoss asserts a burst swallows exactly BurstLen
// consecutive control traversals.
func TestAdversaryBurstLoss(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	// BurstStart 0.999...: the first traversal starts a burst, which
	// then consumes the next BurstLen-1 without further draws.
	net.SetAdversary(Adversary{
		BurstStart: 0.9999999, BurstLen: 5,
		RNG: rand.New(rand.NewSource(3)),
	})
	got := 0
	net.Node(1).SetDeliver(func(ProtoNode, packet.Message) { got++ })
	for i := 0; i < 5; i++ {
		net.Node(0).SendUnicast(advControlPacket(g.Node(1).Addr))
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("burst of 5 let %d of 5 packets through", got)
	}
	if net.Stats().AdvLossDrops != 5 {
		t.Errorf("AdvLossDrops = %d, want 5", net.Stats().AdvLossDrops)
	}
}

// TestAdversaryDuplicateDelivers asserts duplication injects real,
// independently delivered copies, counted in AdvDups, and that the
// copies are deep (mutating the original after transmission must not
// change the duplicate).
func TestAdversaryDuplicateDelivers(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.SetAdversary(Adversary{Duplicate: 0.9999999, RNG: rand.New(rand.NewSource(5))})
	var seen []addr.Addr
	net.Node(1).SetDeliver(func(_ ProtoNode, m packet.Message) {
		seen = append(seen, m.(*packet.Tree).R)
	})
	pkt := advControlPacket(g.Node(1).Addr)
	want := pkt.R
	net.Node(0).SendUnicast(pkt)
	// The transport is zero-copy: the original envelope delivers this
	// very pointer, so this rewrite shows up in the original's
	// delivery. The adversary's duplicate was deep-copied at send time
	// and must still carry the pre-rewrite R — if both deliveries show
	// the rewrite, the twins share structure.
	pkt.R = addr.MustParse("10.255.0.1")
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(seen))
	}
	pristine := 0
	for _, r := range seen {
		if r == want {
			pristine++
		}
	}
	if pristine != 1 {
		t.Errorf("deliveries %v: want exactly one pre-rewrite R=%v (the deep-copied duplicate)", seen, want)
	}
	if net.Stats().AdvDups != 1 {
		t.Errorf("AdvDups = %d, want 1", net.Stats().AdvDups)
	}
}

// TestAdversaryJitterReorders asserts the jitter knob actually
// reorders control packets (the soft-state protocols must tolerate
// out-of-order control) while losing none of them.
func TestAdversaryJitterReorders(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.SetAdversary(Adversary{MaxJitter: 50, RNG: rand.New(rand.NewSource(11))})
	var order []addr.Addr
	net.Node(1).SetDeliver(func(_ ProtoNode, m packet.Message) {
		order = append(order, m.(*packet.Tree).R)
	})
	const n = 50
	for i := 0; i < n; i++ {
		p := advControlPacket(g.Node(1).Addr)
		p.R = addr.RouterAddr(i) // tag with send order
		net.Node(0).SendUnicast(p)
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("delivered %d of %d (jitter must not lose packets)", len(order), n)
	}
	inverted := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inverted++
		}
	}
	if inverted == 0 {
		t.Error("50 sends under jitter 50 arrived perfectly in order")
	}
}

// TestAdversaryValidation pins the knob validation panics.
func TestAdversaryValidation(t *testing.T) {
	g := topology.Line(2, false)
	net, _ := build(g)
	rng := rand.New(rand.NewSource(1))
	for name, a := range map[string]Adversary{
		"loss 1.0":           {Loss: 1.0, RNG: rng},
		"negative loss":      {Loss: -0.1, RNG: rng},
		"dup 1.0":            {Duplicate: 1.0, RNG: rng},
		"negative jitter":    {MaxJitter: -1, RNG: rng},
		"burst without len":  {BurstStart: 0.5, RNG: rng},
		"active without rng": {Loss: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: SetAdversary did not panic", name)
				}
			}()
			net.SetAdversary(a)
		}()
	}
}
