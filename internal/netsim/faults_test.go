package netsim

import (
	"math/rand"
	"testing"

	"hbh/internal/addr"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

func TestLinkDownDrops(t *testing.T) {
	g := topology.Line(3, false)
	net, sim := build(g)

	// Disable the second hop AFTER routing was computed: the stale
	// tables still steer packets onto it, where they must die as
	// LinkDownDrops (the cut-wire model), not panic.
	g.SetLinkEnabled(1, 2, false)
	delivered := 0
	net.Node(2).SetDeliver(func(ProtoNode, packet.Message) { delivered++ })
	net.Node(0).SendUnicast(dataTo(g.Node(2).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if delivered != 0 {
		t.Errorf("delivered = %d over a down link", delivered)
	}
	if st.LinkDownDrops != 1 {
		t.Errorf("LinkDownDrops = %d, want 1", st.LinkDownDrops)
	}
	if st.DataDrops != 1 {
		t.Errorf("DataDrops = %d, want 1", st.DataDrops)
	}

	// After routing reconverges there is no alternate path on a line:
	// the send dies immediately as NoRoute.
	net.Routing().RecomputeLinks([2]topology.NodeID{1, 2})
	net.Node(0).SendUnicast(dataTo(g.Node(2).Addr, 2))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().NoRouteDrops; got != 1 {
		t.Errorf("NoRouteDrops = %d, want 1", got)
	}
}

func TestPartitionNoRouteAfterRecompute(t *testing.T) {
	// The partition contract: sends toward a destination disconnected
	// by a Recompute count NoRouteDrops and never panic, in both
	// directions of the cut.
	g := topology.Line(4, true)
	net, sim := build(g)
	g.SetLinkEnabled(1, 2, false)
	net.Routing().Recompute()

	h0, h3 := g.Hosts()[0], g.Hosts()[3]
	net.Node(h0).SendUnicast(dataTo(g.Node(h3).Addr, 1))
	net.Node(h3).SendUnicast(dataTo(g.Node(h0).Addr, 2))
	// Control traffic across the partition dies the same way.
	net.Node(h0).SendUnicast(&packet.Join{
		Header: packet.Header{
			Proto: packet.ProtoHBH, Type: packet.TypeJoin,
			Channel: addr.Channel{S: g.Node(h3).Addr, G: addr.GroupAddr(0)},
			Dst:     g.Node(h3).Addr,
		},
		R: g.Node(h0).Addr,
	})
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.NoRouteDrops != 3 {
		t.Errorf("NoRouteDrops = %d, want 3", st.NoRouteDrops)
	}
	if st.DataDrops != 2 {
		t.Errorf("DataDrops = %d, want 2", st.DataDrops)
	}
	// Same-side traffic is unaffected.
	ok := 0
	net.Node(g.Hosts()[1]).SetDeliver(func(ProtoNode, packet.Message) { ok++ })
	net.Node(h0).SendUnicast(dataTo(g.Node(g.Hosts()[1]).Addr, 3))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ok != 1 {
		t.Error("intra-partition delivery broken")
	}
}

func TestNodeDownDrops(t *testing.T) {
	g := topology.Line(3, false)
	net, sim := build(g)
	net.SetNodeUp(1, false)

	delivered := 0
	net.Node(2).SetDeliver(func(ProtoNode, packet.Message) { delivered++ })
	// Transit through the down node dies there.
	net.Node(0).SendUnicast(dataTo(g.Node(2).Addr, 1))
	// The down node originates nothing.
	net.Node(1).SendUnicast(dataTo(g.Node(2).Addr, 2))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Errorf("delivered = %d through a down node", delivered)
	}
	if got := net.Stats().NodeDownDrops; got != 2 {
		t.Errorf("NodeDownDrops = %d, want 2", got)
	}

	// Restart: traffic flows again.
	net.SetNodeUp(1, true)
	if !net.NodeUp(1) {
		t.Fatal("NodeUp not reflected")
	}
	net.Node(0).SendUnicast(dataTo(g.Node(2).Addr, 3))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d after restart, want 1", delivered)
	}
}

func TestDataLossModel(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.SetLossModel(LossModel{Data: 0.25, RNG: rand.New(rand.NewSource(7))})

	const n = 4000
	got := 0
	net.Node(1).SetDeliver(func(ProtoNode, packet.Message) { got++ })
	for i := 0; i < n; i++ {
		net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, uint32(i)))
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	rate := 1 - float64(got)/n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("observed data loss rate %.3f, want ~0.25", rate)
	}
	if st.DataLossDrops != n-got {
		t.Errorf("DataLossDrops = %d, want %d", st.DataLossDrops, n-got)
	}
	if st.LossDrops != 0 {
		t.Errorf("LossDrops = %d for data-only loss", st.LossDrops)
	}
	wantRatio := float64(got) / n
	if r := st.DeliveryRatio(); r != wantRatio {
		t.Errorf("DeliveryRatio = %v, want %v", r, wantRatio)
	}
}

func TestStatsDeltaAndRatioWindow(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.Node(1).SetDeliver(func(ProtoNode, packet.Message) {})
	net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	before := net.Stats()
	// Window: one delivery, one drop on a cut link.
	g.SetLinkEnabled(0, 1, false)
	net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, 2))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	d := net.Stats().Delta(before)
	if d.LinkDownDrops != 1 || d.DataDrops != 1 || d.DataDelivered != 0 {
		t.Errorf("windowed delta = %+v", d)
	}
	if r := d.DeliveryRatio(); r != 0 {
		t.Errorf("windowed DeliveryRatio = %v, want 0", r)
	}
	if r := (Stats{}).DeliveryRatio(); r != 1 {
		t.Errorf("empty DeliveryRatio = %v, want 1", r)
	}
}

func TestSetControlLossKeepsDataRate(t *testing.T) {
	g := topology.Line(2, false)
	net, _ := build(g)
	net.SetLossModel(LossModel{Data: 0.5, RNG: rand.New(rand.NewSource(1))})
	net.SetControlLoss(0.25, rand.New(rand.NewSource(2)))
	if net.loss.Data != 0.5 || net.loss.Control != 0.25 {
		t.Errorf("loss model = %+v after compatibility wrapper", net.loss)
	}
}

func TestSetRoutingSwap(t *testing.T) {
	g := topology.Line(3, false)
	net, _ := build(g)
	// Fresh tables for the same graph swap in fine.
	net.SetRouting(unicast.Compute(g))
	defer func() {
		if recover() == nil {
			t.Error("SetRouting accepted tables for a different graph")
		}
	}()
	net.SetRouting(unicast.Compute(topology.Line(3, false)))
}
