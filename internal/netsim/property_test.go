package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hbh/internal/addr"
	"hbh/internal/eventsim"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// TestQuickUnicastDelivery: on any connected random topology with any
// costs, a unicast packet between any two nodes is delivered exactly
// once, with delay equal to the shortest-path distance, traversing
// exactly the links of the canonical path.
func TestQuickUnicastDelivery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Random(topology.RandomConfig{
			Routers: 5 + rng.Intn(15), AvgDegree: 3, Hosts: true,
		}, rng)
		g.RandomizeCosts(rng, 1, 10)
		routing := unicast.Compute(g)
		sim := eventsim.New()
		net := New(sim, g, routing)

		n := g.NumNodes()
		for trial := 0; trial < 10; trial++ {
			from := topology.NodeID(rng.Intn(n))
			to := topology.NodeID(rng.Intn(n))
			if from == to {
				continue
			}
			var deliveredAt eventsim.Time
			delivered := 0
			net.Node(to).SetDeliver(func(_ ProtoNode, msg packet.Message) {
				delivered++
				deliveredAt = sim.Now()
			})
			var hops int
			tap := func(a, b topology.NodeID, msg packet.Message) { hops++ }
			net.AddTap(tap)

			start := sim.Now()
			net.Node(from).SendUnicast(&packet.Data{
				Header: packet.Header{
					Type:    packet.TypeData,
					Channel: addr.Channel{S: addr.MustParse("10.9.9.9"), G: addr.GroupAddr(0)},
					Dst:     g.Node(to).Addr,
				},
				Seq: uint32(trial),
			})
			if err := sim.RunAll(); err != nil {
				return false
			}
			if delivered != 1 {
				return false
			}
			if deliveredAt-start != eventsim.Time(routing.Dist(from, to)) {
				return false
			}
			net.Node(to).SetDeliver(nil)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
