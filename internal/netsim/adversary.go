package netsim

import (
	"fmt"
	"math/rand"

	"hbh/internal/eventsim"
	"hbh/internal/obs"
	"hbh/internal/packet"
	"hbh/internal/topology"
)

// Adversary configures the control-plane adversary: per-link-traversal
// delay jitter (which reorders control messages relative to each
// other), burst and uniform loss, and duplication — the exact message
// pathologies hard-state protocols carry acknowledgment machinery to
// survive, applied here to the soft-state control planes that claim
// not to need it. Data packets are never touched: what degrades under
// an active adversary is the protocol state that routes them, and the
// delivery measurements must keep meaning that.
//
// All draws come from the seeded RNG in deterministic event order, so
// an adversarial run is exactly as reproducible as a clean one.
type Adversary struct {
	// Loss drops each control traversal independently with this
	// probability, in [0, 1).
	Loss float64
	// BurstStart enters a loss burst with this probability per control
	// traversal, in [0, 1); the burst then swallows BurstLen
	// consecutive control traversals (network-wide — a correlated
	// control-plane brownout, not a per-link queue).
	BurstStart float64
	// BurstLen is the burst length in control traversals; must be >= 1
	// when BurstStart > 0.
	BurstLen int
	// MaxJitter adds a uniform extra delay in [0, MaxJitter) to each
	// surviving control traversal. Any two messages on the same link
	// whose sends are closer than the jitter span can arrive reordered.
	MaxJitter eventsim.Time
	// Duplicate injects a second copy of a surviving control traversal
	// with this probability, in [0, 1). The copy is a deep copy (via
	// the wire codec) with its own independent jitter.
	Duplicate float64
	// RNG drives all draws; required when any knob is non-zero.
	RNG *rand.Rand
}

// active reports whether any knob does anything.
func (a Adversary) active() bool {
	return a.Loss > 0 || a.BurstStart > 0 || a.MaxJitter > 0 || a.Duplicate > 0
}

func (a Adversary) validate() {
	for _, p := range []float64{a.Loss, a.BurstStart, a.Duplicate} {
		if p < 0 || p >= 1 {
			panic(fmt.Sprintf("netsim: adversary rate %v out of [0,1)", p))
		}
	}
	if a.MaxJitter < 0 {
		panic(fmt.Sprintf("netsim: adversary jitter %v negative", a.MaxJitter))
	}
	if a.BurstStart > 0 && a.BurstLen < 1 {
		panic(fmt.Sprintf("netsim: adversary burst length %d must be >= 1", a.BurstLen))
	}
	if a.active() && a.RNG == nil {
		panic("netsim: adversary needs an RNG")
	}
}

// advState is the installed adversary plus its running burst counter.
type advState struct {
	cfg       Adversary
	burstLeft int
}

// SetAdversary installs the control-plane adversary, or removes it
// when every knob is zero. With no adversary installed the forwarding
// path is bit-identical to a network that never heard of one (a
// single nil check), so all existing results are flag-invariant.
func (n *Network) SetAdversary(a Adversary) {
	a.validate()
	if !a.active() {
		n.adv = nil
		return
	}
	n.adv = &advState{cfg: a}
}

// roll decides one control traversal's fate: dropped, or forwarded
// with jitter and possibly duplicated. Draw order is fixed (burst,
// uniform loss, jitter, duplicate, duplicate's jitter) so a seeded
// schedule is bit-reproducible.
func (s *advState) roll() (drop bool, jitter, dupJitter eventsim.Time, dup bool) {
	cfg := &s.cfg
	switch {
	case s.burstLeft > 0:
		s.burstLeft--
		return true, 0, 0, false
	case cfg.BurstStart > 0 && cfg.RNG.Float64() < cfg.BurstStart:
		s.burstLeft = cfg.BurstLen - 1
		return true, 0, 0, false
	case cfg.Loss > 0 && cfg.RNG.Float64() < cfg.Loss:
		return true, 0, 0, false
	}
	if cfg.MaxJitter > 0 {
		jitter = eventsim.Time(cfg.RNG.Float64() * float64(cfg.MaxJitter))
	}
	if cfg.Duplicate > 0 && cfg.RNG.Float64() < cfg.Duplicate {
		dup = true
		if cfg.MaxJitter > 0 {
			dupJitter = eventsim.Time(cfg.RNG.Float64() * float64(cfg.MaxJitter))
		}
	}
	return false, jitter, dupJitter, dup
}

// duplicate injects the adversary's second copy of an in-flight
// control packet onto the link from -> to, arriving delay after now.
// The copy is deep (through the wire codec — handlers rewrite messages
// in place, so sharing the reference would entangle the twins) and
// inherits the original's *remaining* hop budget, so duplication can
// not amplify a looping packet beyond the original's own budget. For
// the convergence ledger the copy is an origination (KindSendDirect):
// it adds one in-flight control message that will meet its own
// terminal event, keeping Outstanding balanced.
func (n *Network) duplicate(from, to topology.NodeID, env *envelope, delay eventsim.Time) {
	buf, err := packet.Marshal(env.msg)
	if err != nil {
		panic(fmt.Sprintf("netsim: adversary dup marshal on %d->%d: %v", from, to, err))
	}
	msg, err := packet.Unmarshal(buf)
	if err != nil {
		panic(fmt.Sprintf("netsim: adversary dup unmarshal on %d->%d: %v", from, to, err))
	}
	d := n.newEnvelope(msg)
	d.hops = env.hops
	d.cause = env.cause
	d.to = to
	n.stats.Transmissions++
	n.stats.AdvDups++
	for _, tap := range n.taps {
		tap(from, to, msg)
	}
	if n.obsv != nil {
		n.emitEnv(obs.KindSendDirect, obs.CauseNone, n.nodes[from], n.nodes[to], d)
		n.emitEnv(obs.KindForward, obs.CauseNone, n.nodes[from], n.nodes[to], d)
	}
	n.sim.AfterCall(delay, d)
}
