package netsim

import (
	"hbh/internal/addr"
	"hbh/internal/clock"
	"hbh/internal/obs"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// ProtoNode is the node-side surface the protocol engines (core,
// reunite, igmp, pim) program against. It is everything a resident
// protocol entity may do: inspect its locus, send packets, schedule
// timers through the abstract clock, and emit observability events.
//
// Two implementations exist: *Node (this package — the virtual-time
// simulator) and the live runtime's node (internal/live — goroutine-
// per-router over a real or simulated transport). The engines are
// compiled once against this interface and run unmodified in both
// worlds; the equivalence tests in internal/live pin that the two
// executions produce identical protocol tables.
type ProtoNode interface {
	// ID returns the node's topology identifier.
	ID() topology.NodeID
	// Addr returns the node's unicast address.
	Addr() addr.Addr
	// Name returns the node's human-readable name.
	Name() string

	// Clock returns the node's timer clock. All soft-state timers and
	// refresh tickers are scheduled against it.
	Clock() clock.Clock
	// Topology returns the graph the node lives in.
	Topology() *topology.Graph
	// Routing returns the unicast routing substrate.
	Routing() unicast.Router

	// AddHandler registers a protocol handler on the node.
	AddHandler(h Handler)
	// SetDeliver installs the local delivery sink.
	SetDeliver(d DeliverFunc)

	// SendUnicast originates a packet from this node toward msg.Dst.
	SendUnicast(msg packet.Message)
	// SendDirect pushes a packet one hop to an adjacent node,
	// bypassing unicast routing (the leaf LAN hop).
	SendDirect(to topology.NodeID, msg packet.Message)

	// Observer returns the observability pipeline sink, or nil.
	Observer() *obs.Observer
	// Observing reports whether an observer is attached.
	Observing() bool
	// EmitProto emits a protocol-level observability event at this
	// node and returns the causal stamp assigned to it.
	EmitProto(kind obs.Kind, ch addr.Channel, peer addr.Addr, seq uint32, detail string) obs.Causal
	// CausalContext returns the ambient causal context.
	CausalContext() obs.Causal
	// SetCausalContext replaces the ambient causal context.
	SetCausalContext(c obs.Causal)
	// RootEpisode roots a fresh causal episode for a spontaneous
	// action at this node and installs it as ambient context.
	RootEpisode() obs.Causal
	// StampCausal stamps ev with the ambient causal context.
	StampCausal(ev *obs.Event)
}
