package netsim

import (
	"strings"
	"testing"

	"hbh/internal/addr"
	"hbh/internal/eventsim"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

func build(g *topology.Graph) (*Network, *eventsim.Sim) {
	sim := eventsim.New()
	return New(sim, g, unicast.Compute(g)), sim
}

func dataTo(dst addr.Addr, seq uint32) *packet.Data {
	return &packet.Data{
		Header: packet.Header{
			Type: packet.TypeData,
			Channel: addr.Channel{
				S: addr.MustParse("10.9.9.9"), G: addr.GroupAddr(0),
			},
			Dst: dst,
		},
		Seq: seq,
	}
}

func TestUnicastDeliveryAndDelay(t *testing.T) {
	// A chain whose forward direction costs 2,3,4 per hop.
	g := topology.New()
	n0 := g.AddNode(topology.Router, addr.RouterAddr(0), "R0")
	n1 := g.AddNode(topology.Router, addr.RouterAddr(1), "R1")
	n2 := g.AddNode(topology.Router, addr.RouterAddr(2), "R2")
	n3 := g.AddNode(topology.Router, addr.RouterAddr(3), "R3")
	g.AddLink(n0, n1, 2, 1)
	g.AddLink(n1, n2, 3, 1)
	g.AddLink(n2, n3, 4, 1)

	net, sim := build(g)
	var deliveredAt eventsim.Time
	var via ProtoNode
	net.Node(n3).SetDeliver(func(n ProtoNode, msg packet.Message) {
		deliveredAt = sim.Now()
		via = n
	})
	net.Node(n0).SendUnicast(dataTo(g.Node(n3).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if via == nil {
		t.Fatal("packet not delivered")
	}
	if deliveredAt != 9 { // 2+3+4
		t.Errorf("delivered at %v, want 9", deliveredAt)
	}
	st := net.Stats()
	if st.Transmissions != 3 || st.DataCopies != 3 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHandlerInterception(t *testing.T) {
	g := topology.Line(3, false)
	net, sim := build(g)
	seen := 0
	net.Node(1).AddHandler(HandlerFunc(func(n ProtoNode, msg packet.Message) Verdict {
		seen++
		return Consumed
	}))
	delivered := false
	net.Node(2).SetDeliver(func(ProtoNode, packet.Message) { delivered = true })
	net.Node(0).SendUnicast(dataTo(g.Node(2).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("handler saw %d packets, want 1", seen)
	}
	if delivered {
		t.Error("consumed packet still delivered")
	}
	if net.Stats().Consumed != 1 {
		t.Errorf("consumed stat = %d", net.Stats().Consumed)
	}
}

func TestHandlerOrderFirstConsumedWins(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	var order []string
	net.Node(1).AddHandler(HandlerFunc(func(n ProtoNode, msg packet.Message) Verdict {
		order = append(order, "first")
		return Continue
	}))
	net.Node(1).AddHandler(HandlerFunc(func(n ProtoNode, msg packet.Message) Verdict {
		order = append(order, "second")
		return Consumed
	}))
	net.Node(1).AddHandler(HandlerFunc(func(n ProtoNode, msg packet.Message) Verdict {
		order = append(order, "third")
		return Consumed
	}))
	net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("handler order = %v", order)
	}
}

func TestSendToSelf(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	delivered := false
	net.Node(0).SetDeliver(func(ProtoNode, packet.Message) { delivered = true })
	net.Node(0).SendUnicast(dataTo(g.Node(0).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Error("self-addressed packet not delivered")
	}
	if net.Stats().Transmissions != 0 {
		t.Error("self delivery traversed a link")
	}
}

func TestHopLimit(t *testing.T) {
	g := topology.Line(5, false)
	net, sim := build(g)
	net.SetHopLimit(2)
	delivered := false
	net.Node(4).SetDeliver(func(ProtoNode, packet.Message) { delivered = true })
	net.Node(0).SendUnicast(dataTo(g.Node(4).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("packet beyond hop limit delivered")
	}
	if net.Stats().HopLimitDrops != 1 {
		t.Errorf("hop limit drops = %d, want 1", net.Stats().HopLimitDrops)
	}
}

func TestMulticastDstUnclaimedDropped(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.Node(0).SendUnicast(dataTo(addr.GroupAddr(0), 1)) // multicast dst
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if net.Stats().NoRouteDrops != 1 {
		t.Errorf("NoRouteDrops = %d, want 1", net.Stats().NoRouteDrops)
	}
}

func TestSendDirect(t *testing.T) {
	g := topology.Line(3, false)
	net, sim := build(g)
	// SendDirect pushes a multicast-destination packet over one
	// explicit link; the receiving node's handler claims it.
	got := false
	net.Node(1).AddHandler(HandlerFunc(func(n ProtoNode, msg packet.Message) Verdict {
		got = true
		return Consumed
	}))
	net.Node(0).SendDirect(1, dataTo(addr.GroupAddr(0), 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("SendDirect packet not seen by neighbor handler")
	}

	defer func() {
		if recover() == nil {
			t.Error("SendDirect to non-neighbor did not panic")
		}
	}()
	net.Node(0).SendDirect(2, dataTo(addr.GroupAddr(0), 2))
}

func TestTapSeesEveryTransmission(t *testing.T) {
	g := topology.Line(4, false)
	net, sim := build(g)
	var hops [][2]topology.NodeID
	net.AddTap(func(from, to topology.NodeID, msg packet.Message) {
		hops = append(hops, [2]topology.NodeID{from, to})
	})
	net.Node(0).SendUnicast(dataTo(g.Node(3).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := [][2]topology.NodeID{{0, 1}, {1, 2}, {2, 3}}
	if len(hops) != len(want) {
		t.Fatalf("hops = %v", hops)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}
}

func TestTrace(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	var lines []string
	net.SetTrace(func(l string) { lines = append(lines, l) })
	net.Node(1).SetDeliver(func(ProtoNode, packet.Message) {})
	net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"SEND", "DELIVER"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
}

func TestResetStats(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if net.Stats().Transmissions == 0 {
		t.Fatal("no transmissions recorded")
	}
	net.ResetStats()
	if net.Stats() != (Stats{}) {
		t.Errorf("stats after reset = %+v", net.Stats())
	}
}

func TestNodeAccessors(t *testing.T) {
	g := topology.Line(2, true)
	net, _ := build(g)
	n := net.Node(0)
	if n.ID() != 0 || n.Name() != "R0" || n.Network() != net {
		t.Error("node accessors broken")
	}
	if net.NodeByAddr(g.Node(1).Addr).ID() != 1 {
		t.Error("NodeByAddr broken")
	}
	if net.Topology() != g {
		t.Error("Topology accessor broken")
	}
	if net.Routing() == nil || net.Sim() == nil {
		t.Error("Routing/Sim accessors broken")
	}
}

// TestDeliveryTap pins the tap contract the invariant checker depends
// on: it fires on handler consumption (consumed=true) and on local
// delivery (consumed=false), and stays silent for packets the network
// drops.
func TestDeliveryTap(t *testing.T) {
	g := topology.Line(3, false)
	net, sim := build(g)

	type hit struct {
		at       topology.NodeID
		consumed bool
	}
	var hits []hit
	net.AddDeliveryTap(func(at topology.NodeID, msg packet.Message, consumed bool) {
		hits = append(hits, hit{at, consumed})
	})

	// Consumed mid-path by a handler.
	net.Node(1).AddHandler(HandlerFunc(func(n ProtoNode, msg packet.Message) Verdict {
		return Consumed
	}))
	net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != (hit{1, true}) {
		t.Fatalf("hits after consumption = %v, want [{1 true}]", hits)
	}

	// Locally delivered at the destination (node 2 has no handler).
	hits = nil
	net.Node(0).SendUnicast(dataTo(g.Node(2).Addr, 2))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Node 1's handler consumes everything in transit, so route around
	// it: send from 2's neighbour directly.
	if len(hits) != 1 || hits[0] != (hit{1, true}) {
		t.Fatalf("hits for transit packet = %v, want consumption at node 1", hits)
	}
	hits = nil
	net.Node(1).SendUnicast(dataTo(g.Node(2).Addr, 3)) // own handlers don't run on send
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != (hit{2, false}) {
		t.Fatalf("hits for delivered packet = %v, want [{2 false}]", hits)
	}

	// Dropped at a dead node: no tap.
	hits = nil
	net.SetNodeUp(2, false)
	net.Node(1).SendUnicast(dataTo(g.Node(2).Addr, 4))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.at == 2 {
			t.Fatalf("tap fired for a packet dropped at a dead node: %v", hits)
		}
	}
}
