package netsim

import (
	"math/rand"
	"testing"

	"hbh/internal/addr"
	"hbh/internal/packet"
	"hbh/internal/topology"
)

func TestControlLossDropsControlOnly(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.SetControlLoss(0.9999999, rand.New(rand.NewSource(1)))

	// Control packet: dropped (with overwhelming probability).
	delivered := 0
	net.Node(1).SetDeliver(func(ProtoNode, packet.Message) { delivered++ })
	j := &packet.Join{
		Header: packet.Header{
			Proto: packet.ProtoHBH, Type: packet.TypeJoin,
			Channel: addr.Channel{S: addr.MustParse("10.9.0.1"), G: addr.GroupAddr(0)},
			Dst:     g.Node(1).Addr,
		},
		R: addr.MustParse("10.1.0.0"),
	}
	net.Node(0).SendUnicast(j)
	// Data packet: never dropped.
	net.Node(0).SendUnicast(dataTo(g.Node(1).Addr, 1))
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (data only)", delivered)
	}
	if net.Stats().LossDrops != 1 {
		t.Errorf("LossDrops = %d, want 1", net.Stats().LossDrops)
	}
}

func TestControlLossRate(t *testing.T) {
	g := topology.Line(2, false)
	net, sim := build(g)
	net.SetControlLoss(0.25, rand.New(rand.NewSource(7)))
	const n = 4000
	got := 0
	net.Node(1).SetDeliver(func(ProtoNode, packet.Message) { got++ })
	for i := 0; i < n; i++ {
		net.Node(0).SendUnicast(&packet.Tree{
			Header: packet.Header{
				Proto: packet.ProtoHBH, Type: packet.TypeTree,
				Channel: addr.Channel{S: addr.MustParse("10.9.0.1"), G: addr.GroupAddr(0)},
				Dst:     g.Node(1).Addr,
			},
			R: g.Node(1).Addr,
		})
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	rate := 1 - float64(got)/n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("observed loss rate %.3f, want ~0.25", rate)
	}
}

func TestControlLossValidation(t *testing.T) {
	g := topology.Line(2, false)
	net, _ := build(g)
	for _, p := range []float64{-0.1, 1.0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("loss rate %v accepted", p)
				}
			}()
			net.SetControlLoss(p, rand.New(rand.NewSource(1)))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("positive loss without RNG accepted")
			}
		}()
		net.SetControlLoss(0.5, nil)
	}()
	net.SetControlLoss(0, nil) // zero rate needs no RNG
}
