package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddrClassification(t *testing.T) {
	cases := []struct {
		in        string
		unicast   bool
		multicast bool
	}{
		{"0.0.0.0", false, false},
		{"10.0.0.1", true, false},
		{"192.168.1.1", true, false},
		{"223.255.255.255", true, false},
		{"224.0.0.0", false, true},
		{"224.0.0.1", false, true},
		{"239.255.255.255", false, true},
		{"240.0.0.0", true, false}, // class E: not class-D, usable as unicast here
		{"255.255.255.255", true, false},
	}
	for _, c := range cases {
		a := MustParse(c.in)
		if got := a.IsUnicast(); got != c.unicast {
			t.Errorf("%s IsUnicast = %v, want %v", c.in, got, c.unicast)
		}
		if got := a.IsMulticast(); got != c.multicast {
			t.Errorf("%s IsMulticast = %v, want %v", c.in, got, c.multicast)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Every address must render and re-parse to itself.
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := Parse(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseRejects(t *testing.T) {
	for _, s := range []string{
		"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0",
		"a.b.c.d", "1..2.3", "1.2.3.4 ", " 1.2.3.4",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestOctets(t *testing.T) {
	a := FromOctets(10, 1, 2, 3)
	b0, b1, b2, b3 := a.Octets()
	if b0 != 10 || b1 != 1 || b2 != 2 || b3 != 3 {
		t.Errorf("Octets = %d.%d.%d.%d, want 10.1.2.3", b0, b1, b2, b3)
	}
	if a.String() != "10.1.2.3" {
		t.Errorf("String = %q", a.String())
	}
}

func TestConventionalAddresses(t *testing.T) {
	if got := RouterAddr(0); got != MustParse("10.0.0.0") {
		t.Errorf("RouterAddr(0) = %v", got)
	}
	if got := RouterAddr(300); got != MustParse("10.0.1.44") {
		t.Errorf("RouterAddr(300) = %v", got)
	}
	if got := ReceiverAddr(5); got != MustParse("10.1.0.5") {
		t.Errorf("ReceiverAddr(5) = %v", got)
	}
	if got := GroupAddr(0); got != MustParse("224.0.0.1") {
		t.Errorf("GroupAddr(0) = %v", got)
	}
	if !GroupAddr(12345).IsMulticast() {
		t.Error("GroupAddr(12345) not multicast")
	}
	// Router and receiver addresses never collide for sane indices.
	seen := map[Addr]bool{}
	for i := 0; i < 1000; i++ {
		for _, a := range []Addr{RouterAddr(i), ReceiverAddr(i)} {
			if seen[a] {
				t.Fatalf("address collision at index %d: %v", i, a)
			}
			seen[a] = true
			if !a.IsUnicast() {
				t.Fatalf("conventional address %v not unicast", a)
			}
		}
	}
}

func TestChannel(t *testing.T) {
	s := MustParse("10.0.0.1")
	g := MustParse("224.1.2.3")
	ch, err := NewChannel(s, g)
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Valid() {
		t.Error("valid channel reported invalid")
	}
	if ch.String() != "<10.0.0.1,224.1.2.3>" {
		t.Errorf("String = %q", ch.String())
	}
	if _, err := NewChannel(g, g); err == nil {
		t.Error("multicast source accepted")
	}
	if _, err := NewChannel(s, s); err == nil {
		t.Error("unicast group accepted")
	}
	if _, err := NewChannel(Unspecified, g); err == nil {
		t.Error("zero source accepted")
	}
	if (Channel{}).Valid() {
		t.Error("zero channel reported valid")
	}
}

func TestChannelAsMapKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := make(map[Channel]int)
	var keys []Channel
	for i := 0; i < 100; i++ {
		ch := Channel{S: Addr(rng.Uint32()%0xE0000000 + 1), G: GroupAddr(i)}
		m[ch] = i
		keys = append(keys, ch)
	}
	for i, k := range keys {
		if m[k] != i {
			t.Fatalf("map lookup of %v = %d, want %d", k, m[k], i)
		}
	}
}
