// Package addr defines the addressing model used throughout the
// simulator: IPv4-style 32-bit unicast addresses, class-D multicast
// group addresses, and the source-specific channel abstraction <S, G>
// that HBH inherits from EXPRESS.
//
// A channel is identified by the pair <S, G> where S is the unicast
// address of the source and G is a class-D multicast address allocated
// by the source. The concatenation is globally unique because S is,
// which is what solves the multicast address-allocation problem while
// remaining compatible with IP Multicast group addressing.
package addr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is a 32-bit IPv4-style address. The zero value is the unspecified
// address and is never assigned to a node.
type Addr uint32

// Unspecified is the zero address ("0.0.0.0"). It is used as a sentinel
// for "no address" in protocol tables.
const Unspecified Addr = 0

// classDBase is the start of the class-D (multicast) range, 224.0.0.0.
const classDBase Addr = 0xE0000000

// classDEnd is the end of the class-D range, 239.255.255.255.
const classDEnd Addr = 0xEFFFFFFF

// ErrBadAddress reports a malformed textual address.
var ErrBadAddress = errors.New("addr: malformed address")

// IsZero reports whether a is the unspecified address.
func (a Addr) IsZero() bool { return a == Unspecified }

// IsMulticast reports whether a falls in the class-D range
// 224.0.0.0/4. Multicast addresses identify groups, never nodes, and
// are only ever valid as the G half of a Channel.
func (a Addr) IsMulticast() bool { return a >= classDBase && a <= classDEnd }

// IsUnicast reports whether a is a usable unicast address: non-zero and
// outside the class-D range.
func (a Addr) IsUnicast() bool { return a != Unspecified && !a.IsMulticast() }

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (b0, b1, b2, b3 byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String renders a in dotted-quad notation.
func (a Addr) String() string {
	b0, b1, b2, b3 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", b0, b1, b2, b3)
}

// FromOctets assembles an Addr from four dotted-quad octets.
func FromOctets(b0, b1, b2, b3 byte) Addr {
	return Addr(b0)<<24 | Addr(b1)<<16 | Addr(b2)<<8 | Addr(b3)
}

// Parse parses a dotted-quad address such as "10.0.3.1".
func Parse(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("%w: %q", ErrBadAddress, s)
	}
	var a Addr
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("%w: %q", ErrBadAddress, s)
		}
		a = a<<8 | Addr(v)
	}
	return a, nil
}

// MustParse is Parse but panics on malformed input. It is intended for
// tests and static scenario tables.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// RouterAddr returns the conventional unicast address assigned to
// router number i in generated topologies: 10.0.hi.lo.
func RouterAddr(i int) Addr {
	return FromOctets(10, 0, byte(i>>8), byte(i))
}

// ReceiverAddr returns the conventional unicast address assigned to the
// potential receiver attached to router number i: 10.1.hi.lo.
func ReceiverAddr(i int) Addr {
	return FromOctets(10, 1, byte(i>>8), byte(i))
}

// GroupAddr returns the conventional class-D address for group number
// i: 224.0.hi.lo offset by one so group 0 is 224.0.0.1.
func GroupAddr(i int) Addr {
	i++
	return classDBase | Addr(i&0x00FFFFFF)
}

// Channel identifies a source-specific multicast channel <S, G>:
// S is the unicast address of the source and G a class-D address the
// source allocated. Channel is a comparable value type and is used as a
// map key in every protocol table.
type Channel struct {
	S Addr // unicast source address
	G Addr // class-D group address
}

// NewChannel builds a channel after validating both halves.
func NewChannel(s, g Addr) (Channel, error) {
	if !s.IsUnicast() {
		return Channel{}, fmt.Errorf("addr: channel source %v is not unicast", s)
	}
	if !g.IsMulticast() {
		return Channel{}, fmt.Errorf("addr: channel group %v is not class-D", g)
	}
	return Channel{S: s, G: g}, nil
}

// Valid reports whether c has a unicast S half and class-D G half.
func (c Channel) Valid() bool { return c.S.IsUnicast() && c.G.IsMulticast() }

// String renders the channel as "<S,G>".
func (c Channel) String() string {
	return fmt.Sprintf("<%v,%v>", c.S, c.G)
}
