package igmp

import (
	"testing"

	"hbh/internal/addr"
	"hbh/internal/eventsim"
	"hbh/internal/netsim"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// lanGraph builds one router with n hosts attached.
func lanGraph(n int) *topology.Graph {
	g := topology.New()
	r := g.AddNode(topology.Router, addr.RouterAddr(0), "R")
	for i := 0; i < n; i++ {
		h := g.AddNode(topology.Host, addr.ReceiverAddr(i), "h")
		g.AddLink(h, r, 1, 1)
	}
	return g
}

type edgeLog struct {
	first, gone int
}

func (e *edgeLog) FirstLocalMember(addr.Channel)    { e.first++ }
func (e *edgeLog) LastLocalMemberGone(addr.Channel) { e.gone++ }

func setup(t *testing.T, hosts int) (*eventsim.Sim, *netsim.Network, *Querier, []*Host, addr.Channel) {
	t.Helper()
	g := lanGraph(hosts)
	sim := eventsim.New()
	net := netsim.New(sim, g, unicast.Compute(g))
	q := AttachQuerier(net.Node(0), DefaultConfig())
	var hs []*Host
	for _, hid := range g.Hosts() {
		hs = append(hs, AttachHost(net.Node(hid), DefaultConfig()))
	}
	ch := addr.Channel{S: addr.MustParse("10.9.0.1"), G: addr.GroupAddr(0)}
	return sim, net, q, hs, ch
}

func TestJoinReportsMembership(t *testing.T) {
	sim, _, q, hs, ch := setup(t, 3)
	log := &edgeLog{}
	q.SetListener(log)

	sim.At(10, func() { hs[0].Join(ch) })
	sim.At(20, func() { hs[2].Join(ch) })
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	if !q.HasMembers(ch) {
		t.Fatal("no members after joins")
	}
	ms := q.Members(ch)
	if len(ms) != 2 {
		t.Fatalf("members = %v, want 2", ms)
	}
	if log.first != 1 {
		t.Errorf("FirstLocalMember fired %d times, want 1", log.first)
	}
	if log.gone != 0 {
		t.Errorf("LastLocalMemberGone fired early")
	}
}

func TestExplicitLeave(t *testing.T) {
	sim, _, q, hs, ch := setup(t, 2)
	log := &edgeLog{}
	q.SetListener(log)
	sim.At(10, func() { hs[0].Join(ch); hs[1].Join(ch) })
	sim.At(100, func() { hs[0].Leave(ch) })
	if err := sim.Run(150); err != nil {
		t.Fatal(err)
	}
	if len(q.Members(ch)) != 1 {
		t.Fatalf("members = %v, want 1 after leave", q.Members(ch))
	}
	sim.At(200, func() { hs[1].Leave(ch) })
	if err := sim.Run(260); err != nil {
		t.Fatal(err)
	}
	if q.HasMembers(ch) {
		t.Error("members remain after both left")
	}
	if log.gone != 1 {
		t.Errorf("LastLocalMemberGone fired %d times, want 1", log.gone)
	}
}

func TestSilentTimeout(t *testing.T) {
	sim, net, q, hs, ch := setup(t, 1)
	log := &edgeLog{}
	q.SetListener(log)
	sim.At(10, func() { hs[0].Join(ch) })
	if err := sim.Run(80); err != nil {
		t.Fatal(err)
	}
	if !q.HasMembers(ch) {
		t.Fatal("member not registered")
	}
	// Silence the host by force: mark it left locally WITHOUT sending
	// a leave (simulating a crashed host). Queries go unanswered and
	// the membership must time out.
	hs[0].joined = map[addr.Channel]bool{}
	if err := sim.Run(80 + 3*250); err != nil {
		t.Fatal(err)
	}
	if q.HasMembers(ch) {
		t.Error("silent member never timed out")
	}
	if log.gone != 1 {
		t.Errorf("LastLocalMemberGone fired %d times, want 1", log.gone)
	}
	_ = net
}

// TestQueriesSustainMembership: with queries flowing, a member that
// keeps answering is never expired.
func TestQueriesSustainMembership(t *testing.T) {
	sim, _, q, hs, ch := setup(t, 2)
	sim.At(10, func() { hs[1].Join(ch) })
	if err := sim.Run(2000); err != nil {
		t.Fatal(err)
	}
	ms := q.Members(ch)
	if len(ms) != 1 {
		t.Fatalf("members = %v after sustained queries", ms)
	}
}

func TestJoinIdempotentAndLeaveWithoutJoin(t *testing.T) {
	sim, _, q, hs, ch := setup(t, 1)
	hs[0].Leave(ch) // no-op
	sim.At(5, func() { hs[0].Join(ch); hs[0].Join(ch) })
	if err := sim.Run(60); err != nil {
		t.Fatal(err)
	}
	if len(q.Members(ch)) != 1 {
		t.Fatalf("members = %v, want exactly 1", q.Members(ch))
	}
	if !hs[0].Joined(ch) {
		t.Error("Joined false")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{QueryInterval: 0, MembershipTimeout: 10, UnsolicitedReports: 1},
		{QueryInterval: 10, MembershipTimeout: 10, UnsolicitedReports: 1},
		{QueryInterval: 10, MembershipTimeout: 30, UnsolicitedReports: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestQuerierOnHostPanics(t *testing.T) {
	g := lanGraph(1)
	sim := eventsim.New()
	net := netsim.New(sim, g, unicast.Compute(g))
	defer func() {
		if recover() == nil {
			t.Error("querier on a host did not panic")
		}
	}()
	AttachQuerier(net.Node(g.Hosts()[0]), DefaultConfig())
}
