// Package igmp implements the local membership protocol between end
// hosts and their border router, in the style of IGMPv2 adapted to the
// simulator's point-to-point host links.
//
// The paper's receiver model attaches hosts to routers "through IGMP"
// and observes that the number of receivers behind one border router
// does not influence the cost of the multicast tree: the router
// aggregates local membership behind a single channel subscription.
// This package provides that aggregation layer: hosts announce channel
// membership with reports, the router queries periodically and expires
// silent members, and an upper layer (core.LeafAgent) turns non-empty
// local membership into one HBH subscription and fans arriving data
// out to the local members.
package igmp

import (
	"fmt"

	"hbh/internal/addr"
	"hbh/internal/clock"
	"hbh/internal/eventsim"
	"hbh/internal/netsim"
	"hbh/internal/packet"
	"hbh/internal/topology"
)

// Config carries the IGMP timing constants, in simulator time units.
type Config struct {
	// QueryInterval is the period of the router's general queries.
	QueryInterval eventsim.Time
	// MembershipTimeout expires a member whose reports stop; it must
	// comfortably exceed the query interval.
	MembershipTimeout eventsim.Time
	// UnsolicitedReports is how many back-to-back reports a host sends
	// on join (robustness against loss; IGMPv2 sends 2).
	UnsolicitedReports int
}

// DefaultConfig matches the protocol configs used elsewhere: queries
// every 100 units, membership expiring after 250.
func DefaultConfig() Config {
	return Config{QueryInterval: 100, MembershipTimeout: 250, UnsolicitedReports: 2}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.QueryInterval <= 0 {
		return fmt.Errorf("igmp: non-positive query interval %v", c.QueryInterval)
	}
	if c.MembershipTimeout <= c.QueryInterval {
		return fmt.Errorf("igmp: membership timeout %v must exceed the query interval %v",
			c.MembershipTimeout, c.QueryInterval)
	}
	if c.UnsolicitedReports < 1 {
		return fmt.Errorf("igmp: need at least one unsolicited report")
	}
	return nil
}

// MembershipListener is notified when a channel's local membership
// becomes non-empty or empty. core.LeafAgent implements it to join and
// leave the HBH channel on behalf of local hosts.
type MembershipListener interface {
	FirstLocalMember(ch addr.Channel)
	LastLocalMemberGone(ch addr.Channel)
}

// member tracks one (channel, host) membership at the querier.
type member struct {
	host  topology.NodeID
	timer *clock.SoftTimer
}

// Querier is the router-side IGMP engine: it queries the attached
// hosts, tracks per-channel membership, and notifies the listener on
// membership edges.
type Querier struct {
	cfg      Config
	node     netsim.ProtoNode
	clk      clock.Clock
	hosts    []topology.NodeID
	ticker   *clock.Ticker
	listener MembershipListener
	// members[ch] maps host -> membership record, with a parallel
	// ordered slice for deterministic iteration.
	members map[addr.Channel]map[topology.NodeID]*member
	order   map[addr.Channel][]topology.NodeID
}

// AttachQuerier installs an IGMP querier on router n, serving all
// hosts directly attached to it.
func AttachQuerier(n netsim.ProtoNode, cfg Config) *Querier {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := n.Topology()
	if g.Node(n.ID()).Kind != topology.Router {
		panic("igmp: querier must run on a router")
	}
	q := &Querier{
		cfg:     cfg,
		node:    n,
		clk:     n.Clock(),
		members: make(map[addr.Channel]map[topology.NodeID]*member),
		order:   make(map[addr.Channel][]topology.NodeID),
	}
	for _, nb := range g.Neighbors(n.ID()) {
		if g.Node(nb.To).Kind == topology.Host {
			q.hosts = append(q.hosts, nb.To)
		}
	}
	q.ticker = clock.NewTicker(q.clk, cfg.QueryInterval, q.sendQueries)
	n.AddHandler(q)
	return q
}

// SetListener installs the membership-edge listener (nil clears).
func (q *Querier) SetListener(l MembershipListener) { q.listener = l }

// Stop halts the query ticker.
func (q *Querier) Stop() { q.ticker.Stop() }

// Members returns the current local members of ch in join order.
func (q *Querier) Members(ch addr.Channel) []topology.NodeID {
	return q.order[ch]
}

// HasMembers reports whether any local host is a member of ch.
func (q *Querier) HasMembers(ch addr.Channel) bool { return len(q.order[ch]) > 0 }

func (q *Querier) sendQueries() {
	for _, h := range q.hosts {
		qm := &packet.Query{
			Header: packet.Header{
				Proto: packet.ProtoNone,
				Type:  packet.TypeQuery,
				Src:   q.node.Addr(),
				Dst:   q.node.Topology().Node(h).Addr,
			},
			General: true,
		}
		q.node.SendDirect(h, qm)
	}
}

// Handle implements netsim.Handler: process membership reports from
// directly attached hosts.
func (q *Querier) Handle(n netsim.ProtoNode, msg packet.Message) netsim.Verdict {
	r, ok := msg.(*packet.Report)
	if !ok || r.Dst != q.node.Addr() {
		return netsim.Continue
	}
	host, ok := n.Topology().ByAddr(r.Src)
	if !ok || !q.servesHost(host) {
		return netsim.Consumed // report from a non-local host: ignore
	}
	if r.Leave {
		q.remove(r.Channel, host)
	} else {
		q.refresh(r.Channel, host)
	}
	return netsim.Consumed
}

func (q *Querier) servesHost(h topology.NodeID) bool {
	for _, x := range q.hosts {
		if x == h {
			return true
		}
	}
	return false
}

func (q *Querier) refresh(ch addr.Channel, host topology.NodeID) {
	m := q.members[ch]
	if m == nil {
		m = make(map[topology.NodeID]*member)
		q.members[ch] = m
	}
	if rec := m[host]; rec != nil {
		rec.timer.Refresh()
		return
	}
	first := len(m) == 0
	rec := &member{host: host}
	// Single-phase timeout: model (t1=timeout, t2=instant-ish).
	rec.timer = clock.NewSoftTimer(q.clk, q.cfg.MembershipTimeout, 1, nil, func() {
		q.remove(ch, host)
	})
	m[host] = rec
	q.order[ch] = append(q.order[ch], host)
	if first && q.listener != nil {
		q.listener.FirstLocalMember(ch)
	}
}

func (q *Querier) remove(ch addr.Channel, host topology.NodeID) {
	m := q.members[ch]
	rec := m[host]
	if rec == nil {
		return
	}
	rec.timer.Cancel()
	delete(m, host)
	ord := q.order[ch]
	for i, h := range ord {
		if h == host {
			q.order[ch] = append(ord[:i], ord[i+1:]...)
			break
		}
	}
	if len(m) == 0 {
		delete(q.members, ch)
		delete(q.order, ch)
		if q.listener != nil {
			q.listener.LastLocalMemberGone(ch)
		}
	}
}

// Host is the end-system side: it reports channel memberships to its
// router, both unsolicited on join and in response to queries, and
// records data deliveries (implementing mtree.Member).
type Host struct {
	cfg    Config
	node   netsim.ProtoNode
	clk    clock.Clock
	router topology.NodeID
	joined map[addr.Channel]bool
	// Deliveries maps sequence numbers to arrival times.
	deliveries map[uint32][]eventsim.Time
}

// AttachHost installs the IGMP host agent on host n.
func AttachHost(n netsim.ProtoNode, cfg Config) *Host {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := n.Topology()
	h := &Host{
		cfg:        cfg,
		node:       n,
		clk:        n.Clock(),
		router:     g.AttachedRouter(n.ID()),
		joined:     make(map[addr.Channel]bool),
		deliveries: make(map[uint32][]eventsim.Time),
	}
	n.AddHandler(h)
	return h
}

// Addr returns the host's unicast address.
func (h *Host) Addr() addr.Addr { return h.node.Addr() }

// Join announces membership in ch with unsolicited reports.
func (h *Host) Join(ch addr.Channel) {
	if h.joined[ch] {
		return
	}
	h.joined[ch] = true
	for i := 0; i < h.cfg.UnsolicitedReports; i++ {
		i := i
		h.clk.After(eventsim.Time(i)*5, func() {
			if h.joined[ch] {
				h.sendReport(ch, false)
			}
		})
	}
}

// Leave sends an explicit leave and stops answering queries for ch.
func (h *Host) Leave(ch addr.Channel) {
	if !h.joined[ch] {
		return
	}
	delete(h.joined, ch)
	h.sendReport(ch, true)
}

// Joined reports whether the host is a member of ch.
func (h *Host) Joined(ch addr.Channel) bool { return h.joined[ch] }

func (h *Host) sendReport(ch addr.Channel, leave bool) {
	r := &packet.Report{
		Header: packet.Header{
			Proto:   packet.ProtoNone,
			Type:    packet.TypeReport,
			Channel: ch,
			Src:     h.node.Addr(),
			Dst:     h.node.Topology().Node(h.router).Addr,
		},
		Leave: leave,
	}
	h.node.SendDirect(h.router, r)
}

// Handle implements netsim.Handler: answer queries and record data.
func (h *Host) Handle(n netsim.ProtoNode, msg packet.Message) netsim.Verdict {
	switch m := msg.(type) {
	case *packet.Query:
		if m.Dst != h.node.Addr() {
			return netsim.Continue
		}
		if m.General {
			for ch := range h.joined {
				h.sendReport(ch, false)
			}
		} else if h.joined[m.Channel] {
			h.sendReport(m.Channel, false)
		}
		return netsim.Consumed
	case *packet.Data:
		if m.Dst != h.node.Addr() && m.Dst != m.Channel.G {
			return netsim.Continue
		}
		if !h.joined[m.Channel] {
			return netsim.Continue
		}
		h.deliveries[m.Seq] = append(h.deliveries[m.Seq], h.clk.Now())
		return netsim.Consumed
	default:
		return netsim.Continue
	}
}

// DeliveryAt returns the arrival time of the first copy of packet seq,
// implementing mtree.Member.
func (h *Host) DeliveryAt(seq uint32) (eventsim.Time, bool) {
	ts := h.deliveries[seq]
	if len(ts) == 0 {
		return 0, false
	}
	return ts[0], true
}

// DeliveryCount returns how many copies of packet seq arrived.
func (h *Host) DeliveryCount(seq uint32) int { return len(h.deliveries[seq]) }
