package unicast

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"hbh/internal/topology"
)

// TestLazyConcurrentReadersBitIdentical hammers a shared Lazy router
// from many goroutines — with a cap small enough that every burst
// churns the LRU (evictions, free-list recycling, clock stamps) — and
// asserts every answer is bit-identical to a serially-queried reference
// router that saw the same cost-churn history. Before Lazy grew its
// read/write lock this failed under -race (concurrent map writes and
// torn row recycling); it now doubles as the determinism proof that
// cache scheduling never leaks into routing answers, because
// dijkstraInto ties break deterministically no matter which goroutine
// recomputes a row.
func TestLazyConcurrentReadersBitIdentical(t *testing.T) {
	const (
		routers = 48
		epochs  = 6
		readers = 8
		queries = 400
	)
	rng := rand.New(rand.NewSource(77))
	g := topology.BarabasiAlbert(topology.BAConfig{Routers: routers, M: 2}, rng)
	ref := g.Clone()

	churn := rand.New(rand.NewSource(78))
	g.RandomizeCosts(churn, 1, 12)
	ref.SkipRandomizeCosts(rand.New(rand.NewSource(78)), 1, 12)
	// Replay the identical cost assignment on the clone so both routers
	// see the same graph at every epoch.
	syncCosts := func() {
		for _, e := range g.Edges() {
			ref.SetLinkCost(e.A, e.B, e.CostAB, e.CostBA)
		}
	}
	syncCosts()

	shared := NewLazy(g, LazyOptions{MaxSources: 6})
	serial := NewLazy(ref, LazyOptions{MaxSources: 6})

	for epoch := 0; epoch < epochs; epoch++ {
		// Serial churn phase: perturb a handful of links identically on
		// both graphs and feed both routers the same invalidations.
		if epoch > 0 {
			edges := g.Edges()
			var changes []CostChange
			for k := 0; k < 5; k++ {
				e := edges[churn.Intn(len(edges))]
				nc := 1 + churn.Intn(12)
				changes = append(changes, CostChange{A: e.A, B: e.B, OldAB: e.CostAB, OldBA: e.CostBA})
				g.SetLinkCost(e.A, e.B, nc, nc)
			}
			syncCosts()
			shared.RecomputeCostChanges(changes...)
			serial.RecomputeCostChanges(changes...)
		}

		// Concurrent read phase: every reader works a distinct seeded
		// query list; answers are recorded and compared to the serial
		// reference afterwards, so the assertion itself is race-free.
		type answer struct {
			from, to topology.NodeID
			next     topology.NodeID
			dist     int
		}
		results := make([][]answer, readers)
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				qr := rand.New(rand.NewSource(int64(1000*epoch + r)))
				out := make([]answer, 0, queries)
				for q := 0; q < queries; q++ {
					from := topology.NodeID(qr.Intn(routers))
					to := topology.NodeID(qr.Intn(routers))
					out = append(out, answer{from, to, shared.NextHop(from, to), shared.Dist(from, to)})
				}
				results[r] = out
			}(r)
		}
		wg.Wait()

		for r, out := range results {
			for _, a := range out {
				if want := serial.NextHop(a.from, a.to); a.next != want {
					t.Fatalf("epoch %d reader %d: NextHop(%d,%d) = %d, serial %d",
						epoch, r, a.from, a.to, a.next, want)
				}
				if want := serial.Dist(a.from, a.to); a.dist != want {
					t.Fatalf("epoch %d reader %d: Dist(%d,%d) = %d, serial %d",
						epoch, r, a.from, a.to, a.dist, want)
				}
			}
		}
	}

	if st := shared.Stats(); st.Evictions == 0 || st.Hits == 0 {
		t.Fatalf("hammer did not exercise the cache: stats %+v", st)
	}
	runtime.KeepAlive(serial)
}

// TestLazyConcurrentInvalidation overlaps Recompute* hooks with reader
// bursts: invalidation takes the write lock, so dropping rows while
// queries are in flight must neither race nor return a stale mix. The
// graph itself is never mutated here — only the cache — so every
// answer must equal the eager reference throughout.
func TestLazyConcurrentInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := topology.BarabasiAlbert(topology.BAConfig{Routers: 32, M: 2}, rng)
	g.RandomizeCosts(rng, 1, 10)
	ref := Compute(g)
	l := NewLazy(g, LazyOptions{MaxSources: 4})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		edges := g.Edges()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := edges[i%len(edges)]
			// Costs are unchanged, so the min(old,new) predicate sees
			// the live values: a sound (over-)invalidation workload.
			l.RecomputeCostChanges(CostChange{A: e.A, B: e.B, OldAB: e.CostAB, OldBA: e.CostBA})
			if i%7 == 0 {
				l.Recompute()
			}
		}
	}()

	n := g.NumNodes()
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			qr := rand.New(rand.NewSource(int64(900 + r)))
			for q := 0; q < 500; q++ {
				from := topology.NodeID(qr.Intn(n))
				to := topology.NodeID(qr.Intn(n))
				if got, want := l.Dist(from, to), ref.Dist(from, to); got != want {
					t.Errorf("Dist(%d,%d) = %d during invalidation, eager %d", from, to, got, want)
					return
				}
				if got, want := l.NextHop(from, to), ref.NextHop(from, to); got != want {
					t.Errorf("NextHop(%d,%d) = %d during invalidation, eager %d", from, to, got, want)
					return
				}
			}
		}(r)
	}
	// Readers finish first; then stop the invalidator.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	defer func() { <-done }()
	defer close(stop)
}
