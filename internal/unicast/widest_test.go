package unicast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hbh/internal/addr"
	"hbh/internal/topology"
)

func TestWidestPicksWiderPath(t *testing.T) {
	// A -> D via B: cheap but narrow; via C: expensive but wide.
	g := topology.New()
	a := g.AddNode(topology.Router, addr.RouterAddr(0), "A")
	b := g.AddNode(topology.Router, addr.RouterAddr(1), "B")
	c := g.AddNode(topology.Router, addr.RouterAddr(2), "C")
	d := g.AddNode(topology.Router, addr.RouterAddr(3), "D")
	g.AddLink(a, b, 1, 1)
	g.AddLink(b, d, 1, 1)
	g.AddLink(a, c, 5, 5)
	g.AddLink(c, d, 5, 5)
	g.SetBandwidth(a, b, 10)
	g.SetBandwidth(b, d, 10)
	g.SetBandwidth(a, c, 80)
	g.SetBandwidth(c, d, 90)

	w := ComputeWidest(g)
	if got := w.Bottleneck(a, d); got != 80 {
		t.Errorf("bottleneck A->D = %d, want 80", got)
	}
	if next := w.NextHop(a, d); next != c {
		t.Errorf("next hop A->D = %d, want C", next)
	}
	if got := w.Dist(a, d); got != 10 {
		t.Errorf("cost along widest path = %d, want 10", got)
	}
	// Delay-shortest would have picked B.
	if next := Compute(g).NextHop(a, d); next != b {
		t.Errorf("delay next hop = %d, want B", next)
	}
}

func TestWidestTieBreaksByCost(t *testing.T) {
	// Two equally wide paths; the cheaper one wins.
	g := topology.New()
	a := g.AddNode(topology.Router, addr.RouterAddr(0), "A")
	b := g.AddNode(topology.Router, addr.RouterAddr(1), "B")
	c := g.AddNode(topology.Router, addr.RouterAddr(2), "C")
	d := g.AddNode(topology.Router, addr.RouterAddr(3), "D")
	g.AddLink(a, b, 9, 9)
	g.AddLink(b, d, 9, 9)
	g.AddLink(a, c, 1, 1)
	g.AddLink(c, d, 1, 1)
	// All links same bandwidth.
	for _, e := range g.Edges() {
		g.SetBandwidth(e.A, e.B, 50)
		g.SetBandwidth(e.B, e.A, 50)
	}
	w := ComputeWidest(g)
	if next := w.NextHop(a, d); next != c {
		t.Errorf("next hop = %d, want the cheaper C", next)
	}
	if w.Bottleneck(a, d) != 50 {
		t.Errorf("bottleneck = %d", w.Bottleneck(a, d))
	}
}

// TestQuickWidestInvariants: on random graphs, the selected path (a)
// exists, (b) has bottleneck equal to the reported one, and (c) the
// reported bottleneck is maximal (cross-checked by brute force on
// small graphs).
func TestQuickWidestInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Random(topology.RandomConfig{
			Routers: 4 + rng.Intn(6), AvgDegree: 2.5, Hosts: false,
		}, rng)
		g.RandomizeCosts(rng, 1, 10)
		g.RandomizeBandwidths(rng, 10, 100)
		w := ComputeWidest(g)
		n := g.NumNodes()
		for s := 0; s < n; s++ {
			// Brute force: Bellman-Ford-style widest relaxation.
			want := make([]int, n)
			want[s] = 1 << 30
			for iter := 0; iter < n; iter++ {
				for v := 0; v < n; v++ {
					for _, nb := range g.Neighbors(topology.NodeID(v)) {
						cand := want[v]
						if bw := g.Bandwidth(topology.NodeID(v), nb.To); bw < cand {
							cand = bw
						}
						if cand > want[nb.To] {
							want[nb.To] = cand
						}
					}
				}
			}
			for v := 0; v < n; v++ {
				if v == s {
					continue
				}
				S, V := topology.NodeID(s), topology.NodeID(v)
				if w.Bottleneck(S, V) != want[v] {
					return false
				}
				// Path consistency: walk next hops, compute bottleneck.
				p := w.Path(S, V)
				if len(p) < 2 {
					return false
				}
				got := 1 << 30
				for i := 0; i+1 < len(p); i++ {
					bw := g.Bandwidth(p[i], p[i+1])
					if bw == 0 {
						return false // not a link
					}
					if bw < got {
						got = bw
					}
				}
				if got != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthAccessors(t *testing.T) {
	g := topology.Line(3, false)
	if g.Bandwidth(0, 1) != topology.DefaultBandwidth {
		t.Errorf("unset bandwidth = %d, want default", g.Bandwidth(0, 1))
	}
	if g.Bandwidth(0, 2) != 0 {
		t.Error("bandwidth on missing link nonzero")
	}
	g.SetBandwidth(0, 1, 42)
	if g.Bandwidth(0, 1) != 42 || g.Bandwidth(1, 0) != topology.DefaultBandwidth {
		t.Error("directed bandwidth set incorrectly")
	}
	// Clone preserves bandwidths.
	c := g.Clone()
	if c.Bandwidth(0, 1) != 42 {
		t.Error("clone lost bandwidth")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetBandwidth on missing link did not panic")
		}
	}()
	g.SetBandwidth(0, 2, 10)
}
