package unicast

import (
	"fmt"
	"math/rand"
	"testing"

	"hbh/internal/addr"
	"hbh/internal/topology"
)

func TestRecomputeCostChangeIncrease(t *testing.T) {
	// The case the plain RecomputeLinks dirty test (new cost only) would
	// miss: a link on the current shortest path gets *more* expensive.
	// Square 0-1-2 (cost 1+1) vs 0-3-2 (cost 5+5); raising 0->1 to 20
	// must reroute 0->2 via R3, and the incremental recompute must see
	// source 0 as dirty even though dist(0,1)+newCost > dist(0,2).
	g := topology.New()
	for i := 0; i < 4; i++ {
		g.AddNode(topology.Router, addr.RouterAddr(i), fmt.Sprintf("R%d", i))
	}
	g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 2, 1, 1)
	g.AddLink(0, 3, 5, 5)
	g.AddLink(3, 2, 5, 5)

	r := Compute(g)
	if d := r.Dist(0, 2); d != 2 {
		t.Fatalf("pre-churn dist 0->2 = %d, want 2", d)
	}

	g.SetLinkCost(0, 1, 20, 20)
	r.RecomputeCostChanges(CostChange{A: 0, B: 1, OldAB: 1, OldBA: 1})
	if d := r.Dist(0, 2); d != 10 {
		t.Errorf("post-increase dist 0->2 = %d, want 10 (via R3)", d)
	}
	if nh := r.NextHop(0, 2); nh != 3 {
		t.Errorf("post-increase next hop 0->2 = %v, want 3", nh)
	}
	tablesEqual(t, r, Compute(g), "after cost increase")

	// And back down: a decrease is the case the plain test does cover,
	// but it must round-trip to the original tables.
	g.SetLinkCost(0, 1, 1, 1)
	r.RecomputeCostChanges(CostChange{A: 0, B: 1, OldAB: 20, OldBA: 20})
	if d := r.Dist(0, 2); d != 2 {
		t.Errorf("post-restore dist 0->2 = %d, want 2", d)
	}
	tablesEqual(t, r, Compute(g), "after cost restore")
}

func TestRecomputeCostChangesMatchesFullRecompute(t *testing.T) {
	// Randomized equivalence under churn: random-walk cost perturbations
	// (increases and decreases, sometimes several links per step, as the
	// churner applies them) must leave tables bit-identical to a
	// from-scratch Compute, including Dijkstra tie-breaks.
	rng := rand.New(rand.NewSource(7))
	g := topology.Random(topology.RandomConfig{Routers: 20, AvgDegree: 4, Hosts: true}, rng)
	g.RandomizeCosts(rng, 1, 10)
	r := Compute(g)

	edges := g.Edges()
	clamp := func(c int) int {
		if c < 1 {
			return 1
		}
		if c > 10 {
			return 10
		}
		return c
	}
	for step := 0; step < 40; step++ {
		n := 1 + rng.Intn(3)
		changes := make([]CostChange, 0, n)
		for i := 0; i < n; i++ {
			e := edges[rng.Intn(len(edges))]
			oldAB, oldBA := g.Cost(e.A, e.B), g.Cost(e.B, e.A)
			newAB := clamp(oldAB + rng.Intn(7) - 3)
			newBA := clamp(oldBA + rng.Intn(7) - 3)
			g.SetLinkCost(e.A, e.B, newAB, newBA)
			changes = append(changes, CostChange{A: e.A, B: e.B, OldAB: oldAB, OldBA: oldBA})
		}
		r.RecomputeCostChanges(changes...)
		tablesEqual(t, r, Compute(g), "churn step")
	}
}

func TestRecomputeCostChangesOnDisabledLink(t *testing.T) {
	// Churn keeps perturbing costs while faults have some links down;
	// the changed-link dirty test must not resurrect a disabled link,
	// and tables must still match a from-scratch rebuild.
	g := topology.Line(4, true)
	r := Compute(g)
	g.SetLinkEnabled(1, 2, false)
	r.RecomputeLinks([2]topology.NodeID{1, 2})

	old := g.Cost(1, 2)
	g.SetLinkCost(1, 2, 1, 1)
	r.RecomputeCostChanges(CostChange{A: 1, B: 2, OldAB: old, OldBA: old})
	if r.Reachable(0, 3) {
		t.Fatal("cost change on a down link made it carry traffic")
	}
	tablesEqual(t, r, Compute(g), "churned while down")
}

func TestSetLinkCostUpdatesEdges(t *testing.T) {
	// SetLinkCost must keep the Edges() view and both adjacency
	// directions coherent, regardless of edge orientation.
	g := topology.New()
	for i := 0; i < 2; i++ {
		g.AddNode(topology.Router, addr.RouterAddr(i), fmt.Sprintf("R%d", i))
	}
	g.AddLink(0, 1, 2, 3)
	g.SetLinkCost(1, 0, 7, 8) // reversed orientation: 1->0 is 7, 0->1 is 8
	if c := g.Cost(1, 0); c != 7 {
		t.Errorf("Cost(1,0) = %d, want 7", c)
	}
	if c := g.Cost(0, 1); c != 8 {
		t.Errorf("Cost(0,1) = %d, want 8", c)
	}
	e := g.Edges()[0]
	if e.CostAB != 8 || e.CostBA != 7 {
		t.Errorf("edge costs = %d/%d, want 8/7", e.CostAB, e.CostBA)
	}

	defer func() {
		if recover() == nil {
			t.Error("SetLinkCost with cost 0 did not panic")
		}
	}()
	g.SetLinkCost(0, 1, 0, 1)
}
