package unicast

import "hbh/internal/topology"

// CostChange records one undirected link whose directed costs were
// rewritten (topology.SetLinkCost), carrying the pre-change costs. The
// old costs matter: the dirty-source test below must consider the
// cheaper of the old and new cost per direction to stay sound for cost
// *increases*, which RecomputeLinks' plain test (new cost only) is not.
type CostChange struct {
	A, B topology.NodeID
	// OldAB is the pre-change cost of A -> B, OldBA of B -> A.
	OldAB, OldBA int
}

// RecomputeCostChanges reconverges the tables after the given links'
// costs were rewritten in the graph. Like RecomputeLinks it recomputes
// only dirty sources, but the dirty test for a changed direction
// u -> v uses min(oldCost, newCost):
//
//   - if the cost increased, the link can only matter when it was on a
//     (or tied for a) shortest path before, i.e. dist(s,u) + old <=
//     dist(s,v) — testing with the larger new cost would wrongly skip
//     sources whose best path just got worse;
//   - if the cost decreased, the link can only matter when it now wins
//     or ties a relaxation, i.e. dist(s,u) + new <= dist(s,v);
//
// and min(old, new) covers whichever case applies, so a source failing
// the test recomputes to bit-identical tables. Dirty sources get a
// full Dijkstra, making the result always equal a full Recompute.
// Call after the graph's costs have been updated.
func (r *Routing) RecomputeCostChanges(changes ...CostChange) {
	if r.scratch == nil {
		r.scratch = newSPTScratch(len(r.next))
	}
	for s := range r.next {
		src := topology.NodeID(s)
		for _, ch := range changes {
			if r.costChangeMayAffect(src, ch.A, ch.B, ch.OldAB) ||
				r.costChangeMayAffect(src, ch.B, ch.A, ch.OldBA) {
				dijkstraInto(r.g, src, r.next[s], r.dist[s], r.scratch)
				break
			}
		}
	}
}

// costChangeMayAffect is linkMayAffect with the direction's cost taken
// as min(old, current): sound for both cost increases and decreases
// (see RecomputeCostChanges).
func (r *Routing) costChangeMayAffect(s, u, v topology.NodeID, old int) bool {
	du := r.dist[s][u]
	if du == Infinity {
		return false
	}
	c := r.g.Cost(u, v)
	if c == 0 || (old > 0 && old < c) {
		c = old
	}
	if c == 0 {
		return false
	}
	return AddDist(du, c) <= r.dist[s][v]
}
