package unicast

import (
	"testing"

	"hbh/internal/addr"
	"hbh/internal/topology"
)

// TestAddDistSaturates: distance sums touching Infinity must saturate
// rather than wrap. Infinity is math.MaxInt, so a naive Dist(a,b) +
// Dist(b,c) with one unreachable leg overflows negative and would
// compare as the SHORTEST path — the worst possible failure mode.
func TestAddDistSaturates(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{3, 4, 7},
		{Infinity, 0, Infinity},
		{0, Infinity, Infinity},
		{Infinity, 10, Infinity},
		{Infinity, Infinity, Infinity},
		{Infinity - 1, 2, Infinity},
	}
	for _, c := range cases {
		if got := AddDist(c.a, c.b); got != c.want {
			t.Errorf("AddDist(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := AddDist(c.a, c.b); got < 0 {
			t.Errorf("AddDist(%d, %d) overflowed negative: %d", c.a, c.b, got)
		}
	}
}

// isolatedGraph builds a triangle of routers plus one node with no
// links at all — the structural analogue of a fully partitioned router.
func isolatedGraph() (*topology.Graph, topology.NodeID) {
	g := topology.New()
	a := g.AddNode(topology.Router, addr.RouterAddr(0), "A")
	b := g.AddNode(topology.Router, addr.RouterAddr(1), "B")
	c := g.AddNode(topology.Router, addr.RouterAddr(2), "C")
	iso := g.AddNode(topology.Router, addr.RouterAddr(3), "ISO")
	g.AddLink(a, b, 1, 1)
	g.AddLink(b, c, 1, 1)
	g.AddLink(a, c, 2, 2)
	return g, iso
}

// TestDisconnectedNode: routing over a graph containing a node with no
// links must report Infinity/None for every pair touching it, survive
// Recompute and RecomputeLinks, and never panic or produce a negative
// distance (the overflow regression this file guards).
func TestDisconnectedNode(t *testing.T) {
	g, iso := isolatedGraph()
	r := Compute(g)

	check := func() {
		t.Helper()
		for v := topology.NodeID(0); int(v) < g.NumNodes(); v++ {
			if v == iso {
				continue
			}
			if d := r.Dist(v, iso); d != Infinity {
				t.Errorf("Dist(%d, iso) = %d, want Infinity", v, d)
			}
			if d := r.Dist(iso, v); d != Infinity {
				t.Errorf("Dist(iso, %d) = %d, want Infinity", v, d)
			}
			if d := r.Dist(v, iso); d < 0 {
				t.Errorf("Dist(%d, iso) went negative: overflow", v)
			}
			if nh := r.NextHop(v, iso); nh != topology.None {
				t.Errorf("NextHop(%d, iso) = %d, want None", v, nh)
			}
			if p := r.Path(v, iso); p != nil {
				t.Errorf("Path(%d, iso) = %v, want nil", v, p)
			}
			if r.Reachable(v, iso) {
				t.Errorf("Reachable(%d, iso) = true", v)
			}
		}
		if d := r.Dist(iso, iso); d != 0 {
			t.Errorf("Dist(iso, iso) = %d, want 0", d)
		}
		// Summing two unreachable legs through the public API must
		// saturate, not wrap (the call pattern protocol code uses for
		// two-leg RP delays).
		if got := AddDist(r.Dist(0, iso), r.Dist(iso, 1)); got != Infinity {
			t.Errorf("AddDist of two infinite legs = %d, want Infinity", got)
		}
	}

	check()
	r.Recompute()
	check()
	// A link-state change elsewhere must not disturb the isolated rows.
	g.SetLinkEnabled(0, 1, false)
	r.RecomputeLinks([2]topology.NodeID{0, 1})
	if d := r.Dist(0, 1); d != 3 { // now via C: 2 + 1
		t.Errorf("Dist(0,1) after cut = %d, want 3", d)
	}
	g.SetLinkEnabled(0, 1, true)
	r.RecomputeLinks([2]topology.NodeID{0, 1})
	check()
}

// TestWidestDisconnectedNode: the widest-path tables must likewise
// treat an isolated node as unreachable without overflow.
func TestWidestDisconnectedNode(t *testing.T) {
	g, iso := isolatedGraph()
	w := ComputeWidest(g)
	for v := topology.NodeID(0); int(v) < g.NumNodes(); v++ {
		if v == iso {
			continue
		}
		if bw := w.Bottleneck(v, iso); bw != 0 {
			t.Errorf("Bottleneck(%d, iso) = %d, want 0", v, bw)
		}
		if d := w.Dist(v, iso); d != Infinity {
			t.Errorf("widest Dist(%d, iso) = %d, want Infinity", v, d)
		}
		if d := w.Dist(v, iso); d < 0 {
			t.Errorf("widest Dist(%d, iso) went negative: overflow", v)
		}
		if nh := w.NextHop(v, iso); nh != topology.None {
			t.Errorf("widest NextHop(%d, iso) = %d, want None", v, nh)
		}
	}
}
