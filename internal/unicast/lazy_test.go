package unicast

import (
	"math/rand"
	"testing"

	"hbh/internal/topology"
)

// assertRowMatches compares one source's full lazy row against the
// eager reference, bit for bit.
func assertRowMatches(t *testing.T, l *Lazy, ref *Routing, s topology.NodeID, ctx string) {
	t.Helper()
	g := ref.Graph()
	for to := 0; to < g.NumNodes(); to++ {
		d := topology.NodeID(to)
		if l.Dist(s, d) != ref.Dist(s, d) {
			t.Fatalf("%s: dist[%d][%d] = %d, eager %d", ctx, s, d, l.Dist(s, d), ref.Dist(s, d))
		}
		if l.NextHop(s, d) != ref.NextHop(s, d) {
			t.Fatalf("%s: next[%d][%d] = %d, eager %d", ctx, s, d, l.NextHop(s, d), ref.NextHop(s, d))
		}
	}
}

func TestLazyMatchesEagerAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := topology.Random(topology.RandomConfig{Routers: 24, AvgDegree: 4, Hosts: true}, rng)
	g.RandomizeCosts(rng, 1, 10)
	ref := Compute(g)
	// Cap far below the node count so the scan itself forces evictions.
	l := NewLazy(g, LazyOptions{MaxSources: 5})
	for s := 0; s < g.NumNodes(); s++ {
		assertRowMatches(t, l, ref, topology.NodeID(s), "all-pairs")
	}
	if st := l.Stats(); st.Evictions == 0 {
		t.Fatalf("expected evictions with cap 5 over %d sources, got stats %+v", g.NumNodes(), st)
	}
}

func TestLazyPathMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := topology.Random(topology.RandomConfig{Routers: 16, AvgDegree: 4, Hosts: true}, rng)
	g.RandomizeCosts(rng, 1, 10)
	ref := Compute(g)
	l := NewLazy(g, LazyOptions{MaxSources: 4})
	hosts := g.Hosts()
	for _, a := range hosts {
		for _, b := range hosts {
			pl, pr := l.Path(a, b), ref.Path(a, b)
			if len(pl) != len(pr) {
				t.Fatalf("path %d->%d: lazy %v, eager %v", a, b, pl, pr)
			}
			for i := range pl {
				if pl[i] != pr[i] {
					t.Fatalf("path %d->%d: lazy %v, eager %v", a, b, pl, pr)
				}
			}
		}
	}
}

// TestLazyChurnEvictionProperty is the LRU eviction correctness
// property test: under a random interleaving of cost churn, link
// up/down faults and queries, a lazy router with a tiny LRU (evicting
// and recomputing sources constantly) and one with an unbounded LRU
// (never evicting) must both stay bit-identical to a from-scratch
// eager Compute of the same graph — i.e. eviction and per-source
// invalidation never change results, only when the Dijkstra runs.
func TestLazyChurnEvictionProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		g := topology.Random(topology.RandomConfig{Routers: 18, AvgDegree: 4, Hosts: true}, rng)
		g.RandomizeCosts(rng, 1, 10)
		n := g.NumNodes()

		ref := Compute(g)
		tiny := NewLazy(g, LazyOptions{MaxSources: 3})
		big := NewLazy(g, LazyOptions{MaxSources: 10 * n})

		edges := g.Edges()
		// down tracks which links are currently disabled so the mutation
		// mix can re-enable them (only router-router links are toggled,
		// so hosts never get disconnected).
		down := map[int]bool{}

		for step := 0; step < 60; step++ {
			switch op := rng.Intn(3); op {
			case 0: // cost churn on a random link
				e := edges[rng.Intn(len(edges))]
				old := CostChange{A: e.A, B: e.B, OldAB: g.Cost(e.A, e.B), OldBA: g.Cost(e.B, e.A)}
				if old.OldAB == 0 || old.OldBA == 0 {
					continue // direction disabled reports 0; skip
				}
				g.SetLinkCost(e.A, e.B, 1+rng.Intn(10), 1+rng.Intn(10))
				ref.RecomputeCostChanges(old)
				tiny.RecomputeCostChanges(old)
				big.RecomputeCostChanges(old)
			case 1: // link down / up (router-router links only)
				ei := rng.Intn(len(edges))
				e := edges[ei]
				if g.Node(e.A).Kind != topology.Router || g.Node(e.B).Kind != topology.Router {
					continue
				}
				if down[ei] {
					g.SetLinkEnabled(e.A, e.B, true)
					delete(down, ei)
				} else {
					g.SetLinkEnabled(e.A, e.B, false)
					down[ei] = true
				}
				changed := [2]topology.NodeID{e.A, e.B}
				ref.RecomputeLinks(changed)
				tiny.RecomputeLinks(changed)
				big.RecomputeLinks(changed)
			case 2: // query a burst of random sources (populates + evicts)
				for k := 0; k < 5; k++ {
					s := topology.NodeID(rng.Intn(n))
					d := topology.NodeID(rng.Intn(n))
					if tiny.Dist(s, d) != ref.Dist(s, d) || big.Dist(s, d) != ref.Dist(s, d) {
						t.Fatalf("trial %d step %d: dist[%d][%d] diverged", trial, step, s, d)
					}
				}
			}
			// Full-row spot check every few steps, against a from-scratch
			// Compute (not just the incrementally maintained ref).
			if step%10 == 9 {
				scratch := Compute(g)
				for k := 0; k < 4; k++ {
					s := topology.NodeID(rng.Intn(n))
					assertRowMatches(t, tiny, scratch, s, "tiny-lru")
					assertRowMatches(t, big, scratch, s, "big-lru")
				}
			}
		}
		if st := tiny.Stats(); st.Evictions == 0 {
			t.Fatalf("trial %d: tiny LRU never evicted (stats %+v) — property not exercised", trial, st)
		}
	}
}

func TestNewSelectsFastPath(t *testing.T) {
	small := topology.Line(4, false)
	if _, ok := New(small).(*Routing); !ok {
		t.Fatalf("New below threshold: got %T, want *Routing", New(small))
	}
	defer func(old int) { FastPathThreshold = old }(FastPathThreshold)
	FastPathThreshold = 3
	if _, ok := New(small).(*Lazy); !ok {
		t.Fatalf("New above threshold: got %T, want *Lazy", New(small))
	}
}

func TestLazyDefaultCapClamped(t *testing.T) {
	g := topology.Line(8, false)
	l := NewLazy(g, LazyOptions{})
	if l.MaxSources() != 4096 {
		t.Fatalf("tiny graph cap = %d, want 4096 (upper clamp)", l.MaxSources())
	}
}

func TestLazyMemoryBytes(t *testing.T) {
	g := topology.Line(10, false)
	l := NewLazy(g, LazyOptions{MaxSources: 2})
	if l.MemoryBytes() != 0 {
		t.Fatalf("fresh lazy router reports %d bytes", l.MemoryBytes())
	}
	l.Dist(0, 9)
	if want := int64(10 * lazyRowBytes); l.MemoryBytes() != want {
		t.Fatalf("one row = %d bytes, want %d", l.MemoryBytes(), want)
	}
	// Eviction recycles storage: bytes stay at cap.
	l.Dist(1, 9)
	l.Dist(2, 9)
	if want := int64(3 * 10 * lazyRowBytes); l.MemoryBytes() > want {
		t.Fatalf("post-eviction %d bytes, want <= %d", l.MemoryBytes(), want)
	}
}

func TestEstimateAsymmetryExactOnSmallGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := topology.Random(topology.RandomConfig{Routers: 20, AvgDegree: 4, Hosts: false}, rng)
	g.RandomizeCosts(rng, 1, 10)
	r := Compute(g)
	exact := r.AsymmetryFraction()
	got := EstimateAsymmetryFraction(r, 1, 0)
	if got != exact {
		t.Fatalf("estimator below threshold = %v, want exact %v", got, exact)
	}
}

func TestEstimateAsymmetrySampledConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := topology.Random(topology.RandomConfig{Routers: 40, AvgDegree: 5, Hosts: false}, rng)
	g.RandomizeCosts(rng, 1, 10)
	r := Compute(g)
	exact := r.AsymmetryFraction()
	// Force the sampling path with a budget below the pair count.
	got := EstimateAsymmetryFraction(r, 1, 700)
	if diff := got - exact; diff < -0.12 || diff > 0.12 {
		t.Fatalf("sampled %v too far from exact %v", got, exact)
	}
}
