package unicast

import (
	"fmt"

	"hbh/internal/topology"
)

// Router is the unicast routing substrate every layer above routes
// through: next hops and distances for the simulator's per-hop
// forwarding, full paths for tree reconstruction, and the three
// reconvergence hooks the faults layer drives after substrate changes.
//
// Two implementations exist. *Routing is the eager all-pairs table of
// the paper reproduction — O(n²) memory, bit-identical committed
// results, the small-graph fast path. *Lazy computes per-source rows on
// demand and caches them in an LRU, so cost scales with the sources
// actually routed instead of with n² — the only option at the
// 10k-100k router scale of the A13 experiment. New selects between
// them automatically by node count.
type Router interface {
	// Graph returns the graph the tables are computed over.
	Graph() *topology.Graph
	// NextHop returns the first hop on the shortest path from -> to
	// (topology.None when from == to or to is unreachable).
	NextHop(from, to topology.NodeID) topology.NodeID
	// Dist returns the cost of the shortest directed path from -> to
	// (0 when from == to, Infinity when unreachable).
	Dist(from, to topology.NodeID) int
	// Reachable reports whether to can be reached from from.
	Reachable(from, to topology.NodeID) bool
	// Path returns the node sequence of the shortest directed path,
	// inclusive; nil when unreachable, [from] when from == to.
	Path(from, to topology.NodeID) []topology.NodeID
	// PathLinks returns the path's directed links as (a, b) hops; nil
	// when unreachable or from == to.
	PathLinks(from, to topology.NodeID) [][2]topology.NodeID

	// Recompute reconverges every table after arbitrary graph changes.
	Recompute()
	// RecomputeLinks reconverges after the given undirected links
	// changed up/down state (the graph must already reflect it).
	RecomputeLinks(changed ...[2]topology.NodeID)
	// RecomputeCostChanges reconverges after the given links' costs
	// were rewritten (the graph must already reflect it).
	RecomputeCostChanges(changes ...CostChange)
}

// FastPathThreshold is the node count at or above which New switches
// from the eager all-pairs tables to the lazy per-source substrate.
// Every committed evaluation topology (ISP, random-50, NSFNET,
// Abilene, the bounded fuzz substrates) sits far below it, so all
// committed tables and goldens keep the eager path and stay
// bit-identical. Exported as a variable so scale tests can force
// either mode; production code treats it as a constant.
var FastPathThreshold = 1024

// New builds the routing substrate for g, selecting the eager
// all-pairs fast path below FastPathThreshold nodes and the lazy
// per-source substrate at or above it.
func New(g *topology.Graph) Router {
	if g.NumNodes() < FastPathThreshold {
		return Compute(g)
	}
	return NewLazy(g, LazyOptions{})
}

// walkPath reconstructs the node sequence from -> to by following next
// hops — the shared implementation behind both Router implementations'
// Path methods.
func walkPath(r Router, from, to topology.NodeID) []topology.NodeID {
	if from == to {
		return []topology.NodeID{from}
	}
	if !r.Reachable(from, to) {
		return nil
	}
	path := []topology.NodeID{from}
	cur := from
	for cur != to {
		nxt := r.NextHop(cur, to)
		if nxt == topology.None {
			panic(fmt.Sprintf("unicast: broken table %d->%d at %d", from, to, cur))
		}
		path = append(path, nxt)
		cur = nxt
	}
	return path
}

// walkPathLinks renders walkPath as directed (a, b) hops.
func walkPathLinks(r Router, from, to topology.NodeID) [][2]topology.NodeID {
	p := r.Path(from, to)
	if len(p) < 2 {
		return nil
	}
	links := make([][2]topology.NodeID, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		links = append(links, [2]topology.NodeID{p[i], p[i+1]})
	}
	return links
}

// Asymmetric reports whether the shortest path a -> b differs from the
// reverse of the shortest path b -> a, node-by-node, over any Router
// implementation (the paper's notion of a routing asymmetry between
// two sites).
func Asymmetric(r Router, a, b topology.NodeID) bool {
	fwd := r.Path(a, b)
	rev := r.Path(b, a)
	if len(fwd) != len(rev) {
		return true
	}
	for i := range fwd {
		if fwd[i] != rev[len(rev)-1-i] {
			return true
		}
	}
	return false
}
