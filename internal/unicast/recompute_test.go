package unicast

import (
	"fmt"
	"math/rand"
	"testing"

	"hbh/internal/addr"
	"hbh/internal/topology"
)

// tablesEqual compares two routings entry by entry.
func tablesEqual(t *testing.T, got, want *Routing, context string) {
	t.Helper()
	n := want.Graph().NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			from, to := topology.NodeID(s), topology.NodeID(d)
			if got.Dist(from, to) != want.Dist(from, to) {
				t.Fatalf("%s: dist[%d][%d] = %v, want %v", context, s, d,
					got.Dist(from, to), want.Dist(from, to))
			}
			if got.NextHop(from, to) != want.NextHop(from, to) {
				t.Fatalf("%s: next[%d][%d] = %v, want %v", context, s, d,
					got.NextHop(from, to), want.NextHop(from, to))
			}
		}
	}
}

func TestRecomputeAfterLinkDown(t *testing.T) {
	// Square with a shortcut: 0-1-2, 0-3-2; the direct 0-1-2 route is
	// cheaper until 0-1 fails.
	g := topology.New()
	for i := 0; i < 4; i++ {
		g.AddNode(topology.Router, addr.RouterAddr(i), fmt.Sprintf("R%d", i))
	}
	g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 2, 1, 1)
	g.AddLink(0, 3, 5, 5)
	g.AddLink(3, 2, 5, 5)

	r := Compute(g)
	if d := r.Dist(0, 2); d != 2 {
		t.Fatalf("pre-failure dist 0->2 = %d, want 2", d)
	}

	g.SetLinkEnabled(0, 1, false)
	r.Recompute()
	if d := r.Dist(0, 2); d != 10 {
		t.Errorf("post-failure dist 0->2 = %d, want 10 (via R3)", d)
	}
	if nh := r.NextHop(0, 2); nh != 3 {
		t.Errorf("post-failure next hop 0->2 = %v, want 3", nh)
	}
	if r.Dist(0, 1) != 11 { // 0->3->2->1
		t.Errorf("dist 0->1 = %d, want 11", r.Dist(0, 1))
	}

	g.SetLinkEnabled(0, 1, true)
	r.Recompute()
	tablesEqual(t, r, Compute(g), "after repair")
}

func TestRecomputeLinksMatchesFullRecompute(t *testing.T) {
	// Randomized equivalence: on a random 20-router graph, fail and
	// repair random links; after each change the incremental
	// RecomputeLinks must produce tables bit-identical to a from-scratch
	// Compute (same Dijkstra tie-breaks included).
	rng := rand.New(rand.NewSource(99))
	g := topology.Random(topology.RandomConfig{Routers: 20, AvgDegree: 4, Hosts: true}, rng)
	g.RandomizeCosts(rng, 1, 10)
	r := Compute(g)

	edges := g.Edges()
	for step := 0; step < 40; step++ {
		e := edges[rng.Intn(len(edges))]
		down := rng.Intn(2) == 0
		g.SetLinkEnabled(e.A, e.B, !down)
		r.RecomputeLinks([2]topology.NodeID{e.A, e.B})
		tablesEqual(t, r, Compute(g), "incremental step")
	}
}

func TestPartitionUnreachable(t *testing.T) {
	// Cutting the middle of a line partitions it: distances must go to
	// Infinity, next hops to None, paths to nil — and nothing panics.
	g := topology.Line(4, true)
	r := Compute(g)
	g.SetLinkEnabled(1, 2, false)
	r.RecomputeLinks([2]topology.NodeID{1, 2})

	if r.Reachable(0, 3) {
		t.Fatal("partitioned destination still reachable")
	}
	if d := r.Dist(0, 3); d != Infinity {
		t.Errorf("dist across partition = %d, want Infinity", d)
	}
	if nh := r.NextHop(0, 3); nh != topology.None {
		t.Errorf("next hop across partition = %v, want None", nh)
	}
	if p := r.Path(0, 3); p != nil {
		t.Errorf("path across partition = %v, want nil", p)
	}
	// Within each side routing still works.
	if !r.Reachable(0, 1) || !r.Reachable(2, 3) {
		t.Error("intra-partition routes lost")
	}
	// Repair reconnects and restores the original tables.
	g.SetLinkEnabled(1, 2, true)
	r.RecomputeLinks([2]topology.NodeID{1, 2})
	tablesEqual(t, r, Compute(g), "after partition repair")
}
