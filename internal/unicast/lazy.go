package unicast

import "hbh/internal/topology"

// This file implements the on-demand per-source routing substrate used
// above FastPathThreshold nodes. Instead of materialising all n sources
// eagerly (O(n²) memory — ~20 GB of distFlat alone at 50k routers), a
// Lazy router computes a source's row with the same 0-alloc indexed-heap
// Dijkstra on first query and keeps the most recently used rows in a
// bounded LRU. Invalidation after cost churn and link up/down events is
// per-source: each *cached* row is tested with the identical
// may-affect predicates the eager tables use, and only affected rows
// are dropped (to be recomputed on next touch). Sources not in the
// cache need nothing — their next query runs Dijkstra over the already
// updated graph. Because dijkstraInto breaks ties deterministically, a
// row is bit-identical however it came to exist: computed fresh, kept
// across an invalidation it survived, or recomputed after an eviction.

// DefaultLazyBudgetBytes is the approximate memory budget the default
// LRU capacity is derived from: capacity = budget / (16 bytes × n),
// clamped to [64, 4096] rows. At n = 100k a row is 1.6 MB, giving ~671
// cached sources — comfortably more than any single experiment routes
// concurrently, and ~1 GiB resident worst case.
const DefaultLazyBudgetBytes = 1 << 30

// lazyRowBytes is the per-node size of one cached row: an 8-byte next
// hop plus an 8-byte distance.
const lazyRowBytes = 16

// LazyOptions configures NewLazy.
type LazyOptions struct {
	// MaxSources caps the number of cached per-source rows. 0 derives
	// the cap from DefaultLazyBudgetBytes and the graph size.
	MaxSources int
}

// LazyStats counts cache traffic on a Lazy router, for benchmarks and
// the A13 scale report.
type LazyStats struct {
	Hits          uint64 // queries answered from a cached row
	Misses        uint64 // queries that ran a fresh Dijkstra
	Evictions     uint64 // rows dropped for capacity
	Invalidations uint64 // rows dropped by recompute hooks
	Cached        int    // rows currently resident
}

// Lazy is the on-demand Router implementation: per-source rows computed
// with dijkstraInto on first query, cached in an LRU, invalidated
// per-source by the recompute hooks. Not safe for concurrent use, like
// *Routing.
type Lazy struct {
	g          *topology.Graph
	maxSources int
	rows       map[topology.NodeID]*lazyRow
	// free recycles evicted/invalidated row storage so steady-state
	// cache churn allocates nothing.
	free    []*lazyRow
	scratch *sptScratch
	clock   uint64
	stats   LazyStats
}

// lazyRow is one source's routing row: the same next/dist vectors an
// eager table holds for that source, plus the LRU timestamp.
type lazyRow struct {
	next []topology.NodeID
	dist []int
	used uint64
}

// NewLazy builds an on-demand router over g. No routes are computed
// until queried.
func NewLazy(g *topology.Graph, opts LazyOptions) *Lazy {
	n := g.NumNodes()
	max := opts.MaxSources
	if max <= 0 {
		max = DefaultLazyBudgetBytes / (lazyRowBytes * n)
		if max < 64 {
			max = 64
		}
		if max > 4096 {
			max = 4096
		}
	}
	return &Lazy{
		g:          g,
		maxSources: max,
		rows:       make(map[topology.NodeID]*lazyRow, max),
		scratch:    newSPTScratch(n),
	}
}

// row returns s's routing row, computing it (and evicting the least
// recently used row if at capacity) on a miss.
func (l *Lazy) row(s topology.NodeID) *lazyRow {
	if rw, ok := l.rows[s]; ok {
		l.clock++
		rw.used = l.clock
		l.stats.Hits++
		return rw
	}
	l.stats.Misses++
	if len(l.rows) >= l.maxSources {
		l.evictOldest()
	}
	rw := l.takeRow()
	dijkstraInto(l.g, s, rw.next, rw.dist, l.scratch)
	l.clock++
	rw.used = l.clock
	l.rows[s] = rw
	return rw
}

// takeRow returns row storage from the free list, or allocates it.
func (l *Lazy) takeRow() *lazyRow {
	if n := len(l.free); n > 0 {
		rw := l.free[n-1]
		l.free = l.free[:n-1]
		return rw
	}
	n := l.g.NumNodes()
	return &lazyRow{next: make([]topology.NodeID, n), dist: make([]int, n)}
}

// evictOldest drops the least recently used row. A linear scan is fine:
// the cap is at most a few thousand, and an eviction is always paired
// with a fresh Dijkstra that dwarfs the scan.
func (l *Lazy) evictOldest() {
	var victim topology.NodeID = topology.None
	var oldest uint64
	for s, rw := range l.rows {
		if victim == topology.None || rw.used < oldest {
			victim, oldest = s, rw.used
		}
	}
	if victim == topology.None {
		return
	}
	l.free = append(l.free, l.rows[victim])
	delete(l.rows, victim)
	l.stats.Evictions++
}

// drop removes s's cached row (if resident), recycling its storage.
func (l *Lazy) drop(s topology.NodeID) {
	rw, ok := l.rows[s]
	if !ok {
		return
	}
	l.free = append(l.free, rw)
	delete(l.rows, s)
	l.stats.Invalidations++
}

// NextHop returns the first hop on the shortest path from -> to.
func (l *Lazy) NextHop(from, to topology.NodeID) topology.NodeID {
	return l.row(from).next[to]
}

// Dist returns the cost of the shortest directed path from -> to.
func (l *Lazy) Dist(from, to topology.NodeID) int {
	return l.row(from).dist[to]
}

// Reachable reports whether to can be reached from from.
func (l *Lazy) Reachable(from, to topology.NodeID) bool {
	return l.row(from).dist[to] != Infinity
}

// Path returns the node sequence of the shortest directed path
// from -> to. Each intermediate node's row is materialised (and
// cached) along the way — the same rows per-hop forwarding of a packet
// on that path would touch.
func (l *Lazy) Path(from, to topology.NodeID) []topology.NodeID {
	return walkPath(l, from, to)
}

// PathLinks returns the path's directed links as (a, b) hops.
func (l *Lazy) PathLinks(from, to topology.NodeID) [][2]topology.NodeID {
	return walkPathLinks(l, from, to)
}

// Recompute drops every cached row; each recomputes over the current
// graph on its next query. Equivalent to the eager full reconvergence.
func (l *Lazy) Recompute() {
	for s := range l.rows {
		l.drop(s)
	}
}

// RecomputeLinks invalidates cached rows after the given undirected
// links changed up/down state. A cached row holds pre-change tables, so
// the eager path's dirty-source predicate applies verbatim: source s is
// affected iff some changed direction u -> v satisfies
// dist(s,u) + c(u,v) <= dist(s,v) in s's cached row (see
// Routing.RecomputeLinks for the soundness argument in both the
// link-down and link-up cases). Affected rows are dropped rather than
// recomputed — the next query pays the Dijkstra. Uncached sources need
// nothing: they have no stale state to fix.
func (l *Lazy) RecomputeLinks(changed ...[2]topology.NodeID) {
	for s, rw := range l.rows {
		for _, ch := range changed {
			if l.linkMayAffect(rw, ch[0], ch[1]) || l.linkMayAffect(rw, ch[1], ch[0]) {
				l.drop(s)
				break
			}
		}
	}
}

// RecomputeCostChanges invalidates cached rows after the given links'
// costs were rewritten, using the eager path's min(old, new) predicate
// per direction (see Routing.RecomputeCostChanges).
func (l *Lazy) RecomputeCostChanges(changes ...CostChange) {
	for s, rw := range l.rows {
		for _, ch := range changes {
			if l.costChangeMayAffect(rw, ch.A, ch.B, ch.OldAB) ||
				l.costChangeMayAffect(rw, ch.B, ch.A, ch.OldBA) {
				l.drop(s)
				break
			}
		}
	}
}

// linkMayAffect is Routing.linkMayAffect against a cached row's
// pre-change distances.
func (l *Lazy) linkMayAffect(rw *lazyRow, u, v topology.NodeID) bool {
	du := rw.dist[u]
	if du == Infinity {
		return false
	}
	c := l.g.Cost(u, v)
	if c == 0 {
		return false
	}
	return AddDist(du, c) <= rw.dist[v]
}

// costChangeMayAffect is Routing.costChangeMayAffect against a cached
// row's pre-change distances.
func (l *Lazy) costChangeMayAffect(rw *lazyRow, u, v topology.NodeID, old int) bool {
	du := rw.dist[u]
	if du == Infinity {
		return false
	}
	c := l.g.Cost(u, v)
	if c == 0 || (old > 0 && old < c) {
		c = old
	}
	if c == 0 {
		return false
	}
	return AddDist(du, c) <= rw.dist[v]
}

// Graph returns the graph routes are computed over.
func (l *Lazy) Graph() *topology.Graph { return l.g }

// MaxSources returns the LRU capacity in rows.
func (l *Lazy) MaxSources() int { return l.maxSources }

// Cached reports whether s's row is currently resident (test hook).
func (l *Lazy) Cached(s topology.NodeID) bool {
	_, ok := l.rows[s]
	return ok
}

// Stats returns a snapshot of the cache counters.
func (l *Lazy) Stats() LazyStats {
	st := l.stats
	st.Cached = len(l.rows)
	return st
}

// MemoryBytes estimates the row storage resident on this router —
// cached rows plus the recycle list — for the A13 table-memory column.
func (l *Lazy) MemoryBytes() int64 {
	return int64(len(l.rows)+len(l.free)) * int64(l.g.NumNodes()) * lazyRowBytes
}

// EagerMemoryBytes estimates what eager Compute's flat tables would
// occupy for an n-node graph, for the same A13 column.
func EagerMemoryBytes(n int) int64 {
	return int64(n) * int64(n) * lazyRowBytes
}
