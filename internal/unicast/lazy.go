package unicast

import (
	"sync"
	"sync/atomic"

	"hbh/internal/topology"
)

// This file implements the on-demand per-source routing substrate used
// above FastPathThreshold nodes. Instead of materialising all n sources
// eagerly (O(n²) memory — ~20 GB of distFlat alone at 50k routers), a
// Lazy router computes a source's row with the same 0-alloc indexed-heap
// Dijkstra on first query and keeps the most recently used rows in a
// bounded LRU. Invalidation after cost churn and link up/down events is
// per-source: each *cached* row is tested with the identical
// may-affect predicates the eager tables use, and only affected rows
// are dropped (to be recomputed on next touch). Sources not in the
// cache need nothing — their next query runs Dijkstra over the already
// updated graph. Because dijkstraInto breaks ties deterministically, a
// row is bit-identical however it came to exist: computed fresh, kept
// across an invalidation it survived, or recomputed after an eviction.

// DefaultLazyBudgetBytes is the approximate memory budget the default
// LRU capacity is derived from: capacity = budget / (16 bytes × n),
// clamped to [64, 4096] rows. At n = 100k a row is 1.6 MB, giving ~671
// cached sources — comfortably more than any single experiment routes
// concurrently, and ~1 GiB resident worst case.
const DefaultLazyBudgetBytes = 1 << 30

// lazyRowBytes is the per-node size of one cached row: an 8-byte next
// hop plus an 8-byte distance.
const lazyRowBytes = 16

// LazyOptions configures NewLazy.
type LazyOptions struct {
	// MaxSources caps the number of cached per-source rows. 0 derives
	// the cap from DefaultLazyBudgetBytes and the graph size.
	MaxSources int
}

// LazyStats counts cache traffic on a Lazy router, for benchmarks and
// the A13 scale report. Under concurrent readers the counters are a
// consistent snapshot of monotone atomics, but hit/miss attribution of
// racing queries for the same uncached source is scheduling-dependent;
// the routing answers themselves never are.
type LazyStats struct {
	Hits          uint64 // queries answered from a cached row
	Misses        uint64 // queries that ran a fresh Dijkstra
	Evictions     uint64 // rows dropped for capacity
	Invalidations uint64 // rows dropped by recompute hooks
	Cached        int    // rows currently resident
}

// Lazy is the on-demand Router implementation: per-source rows computed
// with dijkstraInto on first query, cached in an LRU, invalidated
// per-source by the recompute hooks.
//
// Unlike *Routing, Lazy is safe for concurrent queries: the sharded
// many-channel runtime hands one Lazy to every worker. Queries take a
// read lock on the fast path (cached row) and only escalate to the
// write lock to run a Dijkstra; the recompute hooks take the write
// lock, so invalidation may be called concurrently with queries.
// Mutating the underlying graph still requires quiescence: no query or
// hook may be in flight while costs or link states change (the shard
// barrier in the runtime provides exactly that window).
type Lazy struct {
	g          *topology.Graph
	maxSources int

	// mu guards rows, free and scratch. A row's next/dist slices are
	// only dereferenced while holding mu (either mode): dropped rows
	// are recycled through free, and recycling happens under the write
	// lock, so a reader inside the lock can never observe a row being
	// recomputed in place.
	mu      sync.RWMutex
	rows    map[topology.NodeID]*lazyRow
	// free recycles evicted/invalidated row storage so steady-state
	// cache churn allocates nothing.
	free    []*lazyRow
	scratch *sptScratch

	// clock stamps LRU touches. Atomic so the read-locked fast path
	// can bump it without escalating to the write lock.
	clock                                  atomic.Uint64
	hits, misses, evictions, invalidations atomic.Uint64
}

// lazyRow is one source's routing row: the same next/dist vectors an
// eager table holds for that source, plus the LRU timestamp (atomic,
// written by read-locked queries).
type lazyRow struct {
	next []topology.NodeID
	dist []int
	used atomic.Uint64
}

// NewLazy builds an on-demand router over g. No routes are computed
// until queried.
func NewLazy(g *topology.Graph, opts LazyOptions) *Lazy {
	n := g.NumNodes()
	max := opts.MaxSources
	if max <= 0 {
		max = DefaultLazyBudgetBytes / (lazyRowBytes * n)
		if max < 64 {
			max = 64
		}
		if max > 4096 {
			max = 4096
		}
	}
	return &Lazy{
		g:          g,
		maxSources: max,
		rows:       make(map[topology.NodeID]*lazyRow, max),
		scratch:    newSPTScratch(n),
	}
}

// query answers one element read from s's row: the fast path touches
// the cached row under the read lock; a miss escalates to the write
// lock, re-checks (another goroutine may have filled the row in the
// window between the locks), and computes. The element is read inside
// whichever lock is held, so the row cannot be recycled under it.
func (l *Lazy) query(s topology.NodeID, read func(*lazyRow) int) int {
	l.mu.RLock()
	if rw, ok := l.rows[s]; ok {
		rw.used.Store(l.clock.Add(1))
		v := read(rw)
		l.mu.RUnlock()
		l.hits.Add(1)
		return v
	}
	l.mu.RUnlock()

	l.mu.Lock()
	v := read(l.rowLocked(s))
	l.mu.Unlock()
	return v
}

// rowLocked returns s's routing row, computing it (and evicting the
// least recently used row if at capacity) on a miss. Caller must hold
// the write lock.
func (l *Lazy) rowLocked(s topology.NodeID) *lazyRow {
	if rw, ok := l.rows[s]; ok {
		rw.used.Store(l.clock.Add(1))
		l.hits.Add(1)
		return rw
	}
	l.misses.Add(1)
	if len(l.rows) >= l.maxSources {
		l.evictOldest()
	}
	rw := l.takeRow()
	dijkstraInto(l.g, s, rw.next, rw.dist, l.scratch)
	rw.used.Store(l.clock.Add(1))
	l.rows[s] = rw
	return rw
}

// takeRow returns row storage from the free list, or allocates it.
// Caller must hold the write lock.
func (l *Lazy) takeRow() *lazyRow {
	if n := len(l.free); n > 0 {
		rw := l.free[n-1]
		l.free = l.free[:n-1]
		return rw
	}
	n := l.g.NumNodes()
	return &lazyRow{next: make([]topology.NodeID, n), dist: make([]int, n)}
}

// evictOldest drops the least recently used row. A linear scan is fine:
// the cap is at most a few thousand, and an eviction is always paired
// with a fresh Dijkstra that dwarfs the scan. Caller must hold the
// write lock.
func (l *Lazy) evictOldest() {
	var victim topology.NodeID = topology.None
	var oldest uint64
	for s, rw := range l.rows {
		if u := rw.used.Load(); victim == topology.None || u < oldest {
			victim, oldest = s, u
		}
	}
	if victim == topology.None {
		return
	}
	l.free = append(l.free, l.rows[victim])
	delete(l.rows, victim)
	l.evictions.Add(1)
}

// dropLocked removes s's cached row (if resident), recycling its
// storage. Caller must hold the write lock.
func (l *Lazy) dropLocked(s topology.NodeID) {
	rw, ok := l.rows[s]
	if !ok {
		return
	}
	l.free = append(l.free, rw)
	delete(l.rows, s)
	l.invalidations.Add(1)
}

// NextHop returns the first hop on the shortest path from -> to.
func (l *Lazy) NextHop(from, to topology.NodeID) topology.NodeID {
	return topology.NodeID(l.query(from, func(rw *lazyRow) int { return int(rw.next[to]) }))
}

// Dist returns the cost of the shortest directed path from -> to.
func (l *Lazy) Dist(from, to topology.NodeID) int {
	return l.query(from, func(rw *lazyRow) int { return rw.dist[to] })
}

// Reachable reports whether to can be reached from from.
func (l *Lazy) Reachable(from, to topology.NodeID) bool {
	return l.Dist(from, to) != Infinity
}

// Path returns the node sequence of the shortest directed path
// from -> to. Each intermediate node's row is materialised (and
// cached) along the way — the same rows per-hop forwarding of a packet
// on that path would touch.
func (l *Lazy) Path(from, to topology.NodeID) []topology.NodeID {
	return walkPath(l, from, to)
}

// PathLinks returns the path's directed links as (a, b) hops.
func (l *Lazy) PathLinks(from, to topology.NodeID) [][2]topology.NodeID {
	return walkPathLinks(l, from, to)
}

// Recompute drops every cached row; each recomputes over the current
// graph on its next query. Equivalent to the eager full reconvergence.
func (l *Lazy) Recompute() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s := range l.rows {
		l.dropLocked(s)
	}
}

// RecomputeLinks invalidates cached rows after the given undirected
// links changed up/down state. A cached row holds pre-change tables, so
// the eager path's dirty-source predicate applies verbatim: source s is
// affected iff some changed direction u -> v satisfies
// dist(s,u) + c(u,v) <= dist(s,v) in s's cached row (see
// Routing.RecomputeLinks for the soundness argument in both the
// link-down and link-up cases). Affected rows are dropped rather than
// recomputed — the next query pays the Dijkstra. Uncached sources need
// nothing: they have no stale state to fix.
func (l *Lazy) RecomputeLinks(changed ...[2]topology.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s, rw := range l.rows {
		for _, ch := range changed {
			if l.linkMayAffect(rw, ch[0], ch[1]) || l.linkMayAffect(rw, ch[1], ch[0]) {
				l.dropLocked(s)
				break
			}
		}
	}
}

// RecomputeCostChanges invalidates cached rows after the given links'
// costs were rewritten, using the eager path's min(old, new) predicate
// per direction (see Routing.RecomputeCostChanges).
func (l *Lazy) RecomputeCostChanges(changes ...CostChange) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s, rw := range l.rows {
		for _, ch := range changes {
			if l.costChangeMayAffect(rw, ch.A, ch.B, ch.OldAB) ||
				l.costChangeMayAffect(rw, ch.B, ch.A, ch.OldBA) {
				l.dropLocked(s)
				break
			}
		}
	}
}

// linkMayAffect is Routing.linkMayAffect against a cached row's
// pre-change distances.
func (l *Lazy) linkMayAffect(rw *lazyRow, u, v topology.NodeID) bool {
	du := rw.dist[u]
	if du == Infinity {
		return false
	}
	c := l.g.Cost(u, v)
	if c == 0 {
		return false
	}
	return AddDist(du, c) <= rw.dist[v]
}

// costChangeMayAffect is Routing.costChangeMayAffect against a cached
// row's pre-change distances.
func (l *Lazy) costChangeMayAffect(rw *lazyRow, u, v topology.NodeID, old int) bool {
	du := rw.dist[u]
	if du == Infinity {
		return false
	}
	c := l.g.Cost(u, v)
	if c == 0 || (old > 0 && old < c) {
		c = old
	}
	if c == 0 {
		return false
	}
	return AddDist(du, c) <= rw.dist[v]
}

// Graph returns the graph routes are computed over.
func (l *Lazy) Graph() *topology.Graph { return l.g }

// MaxSources returns the LRU capacity in rows.
func (l *Lazy) MaxSources() int { return l.maxSources }

// Cached reports whether s's row is currently resident (test hook).
func (l *Lazy) Cached(s topology.NodeID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.rows[s]
	return ok
}

// Stats returns a snapshot of the cache counters.
func (l *Lazy) Stats() LazyStats {
	l.mu.RLock()
	cached := len(l.rows)
	l.mu.RUnlock()
	return LazyStats{
		Hits:          l.hits.Load(),
		Misses:        l.misses.Load(),
		Evictions:     l.evictions.Load(),
		Invalidations: l.invalidations.Load(),
		Cached:        cached,
	}
}

// MemoryBytes estimates the row storage resident on this router —
// cached rows plus the recycle list — for the A13 table-memory column.
func (l *Lazy) MemoryBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int64(len(l.rows)+len(l.free)) * int64(l.g.NumNodes()) * lazyRowBytes
}

// EagerMemoryBytes estimates what eager Compute's flat tables would
// occupy for an n-node graph, for the same A13 column.
func EagerMemoryBytes(n int) int64 {
	return int64(n) * int64(n) * lazyRowBytes
}
