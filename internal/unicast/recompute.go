package unicast

import "hbh/internal/topology"

// This file implements routing reconvergence after topology changes
// (link failures and repairs injected by the faults layer). The tables
// are mutated in place, so every layer holding a *Routing — netsim,
// the protocol engines' forward-path checks — observes the converged
// tables at once, exactly as if the unicast IGP had finished
// reconverging.

// Recompute rebuilds every routing table over the graph's current
// costs and link state by re-running Dijkstra from every node. The
// tables and the Dijkstra heap are reused in place, so reconvergence
// allocates nothing.
func (r *Routing) Recompute() {
	if r.scratch == nil {
		// Routings assembled row-by-row (ComputeWidest's embedded
		// tables) lack the shared scratch; build it on first use.
		r.scratch = newSPTScratch(len(r.next))
	}
	for s := range r.next {
		dijkstraInto(r.g, topology.NodeID(s), r.next[s], r.dist[s], r.scratch)
	}
}

// RecomputeLinks reconverges the tables after the given undirected
// links changed state (went down or came back up). Only dirty sources
// are recomputed: a source s is dirty for a changed link iff one of
// the link's directions lies on some current shortest path from s
// (relevant when the link went down) or could now provide an equal or
// shorter path (relevant when it came up). Both tests run against the
// pre-change tables, which is sound either way:
//
//   - removal of a link with dist(s,u) + c(u,v) > dist(s,v) strictly
//     cannot change any final distance or deterministic tie-break, and
//   - an added link failing the same test never wins or ties a
//     relaxation, so the tables s would recompute are bit-identical.
//
// Dirty sources get a full Dijkstra, so the result always equals a
// full Recompute — this is purely a work-avoidance path (on the
// evaluation topologies a single link cut typically dirties a fraction
// of the sources). Call after the graph's link state has been updated.
func (r *Routing) RecomputeLinks(changed ...[2]topology.NodeID) {
	if r.scratch == nil {
		r.scratch = newSPTScratch(len(r.next))
	}
	for s := range r.next {
		src := topology.NodeID(s)
		for _, l := range changed {
			if r.linkMayAffect(src, l[0], l[1]) || r.linkMayAffect(src, l[1], l[0]) {
				dijkstraInto(r.g, src, r.next[s], r.dist[s], r.scratch)
				break
			}
		}
	}
}

// linkMayAffect reports whether the directed link u -> v can be on, or
// can improve/tie, a shortest path from s, judged by the current
// (pre-change) tables.
func (r *Routing) linkMayAffect(s, u, v topology.NodeID) bool {
	du := r.dist[s][u]
	if du == Infinity {
		return false
	}
	c := r.g.Cost(u, v)
	if c == 0 {
		return false
	}
	return AddDist(du, c) <= r.dist[s][v]
}
