package unicast

import (
	"container/heap"

	"hbh/internal/topology"
)

// Widest-path (maximum-bottleneck) routing supports the QoS extension:
// the paper argues HBH "is suitable for an eventual implementation of
// Quality of Service based routing" precisely because it builds
// forward trees on whatever unicast tables the network uses. Swap the
// delay-shortest tables for widest-bandwidth tables and HBH members
// inherit maximum-bottleneck paths from the source; reverse-path
// protocols inherit the bottleneck of the wrong direction.

// WidestRouting bundles routing tables selected for maximum bottleneck
// bandwidth with the resulting per-pair bottlenecks.
type WidestRouting struct {
	*Routing
	// bottleneck[from][to] is the bandwidth of the selected path's
	// narrowest link (0 when unreachable or from == to).
	bottleneck [][]int
}

// Bottleneck returns the selected path's narrowest directed bandwidth
// from -> to.
func (w *WidestRouting) Bottleneck(from, to topology.NodeID) int {
	return w.bottleneck[from][to]
}

// ComputeWidest builds, for every ordered pair, a path maximising the
// bottleneck bandwidth, with ties broken by lower additive cost and
// then by node order (deterministic). The embedded Routing reports the
// additive cost and next hops of the SELECTED paths, so it plugs into
// the simulator exactly like delay-based tables.
func ComputeWidest(g *topology.Graph) *WidestRouting {
	n := g.NumNodes()
	w := &WidestRouting{
		Routing: &Routing{
			g:    g,
			next: make([][]topology.NodeID, n),
			dist: make([][]int, n),
		},
		bottleneck: make([][]int, n),
	}
	for s := 0; s < n; s++ {
		w.Routing.next[s], w.Routing.dist[s], w.bottleneck[s] = widestFrom(g, topology.NodeID(s))
	}
	return w
}

// wpItem orders the widest-path heap: wider bottleneck first, then
// cheaper cost, then lower node id.
type wpItem struct {
	node   topology.NodeID
	bottle int
	cost   int
}

type wpq []wpItem

func (q wpq) Len() int { return len(q) }
func (q wpq) Less(i, j int) bool {
	if q[i].bottle != q[j].bottle {
		return q[i].bottle > q[j].bottle
	}
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	return q[i].node < q[j].node
}
func (q wpq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *wpq) Push(x any)   { *q = append(*q, x.(wpItem)) }
func (q *wpq) Pop() any {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

const maxInt = int(^uint(0) >> 1)

func widestFrom(g *topology.Graph, s topology.NodeID) ([]topology.NodeID, []int, []int) {
	n := g.NumNodes()
	bottle := make([]int, n)
	cost := make([]int, n)
	first := make([]topology.NodeID, n)
	done := make([]bool, n)
	for i := range first {
		first[i] = topology.None
		cost[i] = Infinity
	}
	bottle[s] = maxInt
	cost[s] = 0

	q := &wpq{{node: s, bottle: maxInt, cost: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(wpItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, nb := range g.Neighbors(v) {
			bw := g.Bandwidth(v, nb.To)
			cand := min(bottle[v], bw)
			nc := cost[v] + nb.Cost
			better := cand > bottle[nb.To] ||
				(cand == bottle[nb.To] && nc < cost[nb.To])
			if !better || done[nb.To] {
				continue
			}
			bottle[nb.To] = cand
			cost[nb.To] = nc
			if v == s {
				first[nb.To] = nb.To
			} else {
				first[nb.To] = first[v]
			}
			heap.Push(q, wpItem{node: nb.To, bottle: cand, cost: nc})
		}
	}
	bottle[s] = 0
	return first, cost, bottle
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
