package unicast

import (
	"hbh/internal/topology"
)

// Widest-path (maximum-bottleneck) routing supports the QoS extension:
// the paper argues HBH "is suitable for an eventual implementation of
// Quality of Service based routing" precisely because it builds
// forward trees on whatever unicast tables the network uses. Swap the
// delay-shortest tables for widest-bandwidth tables and HBH members
// inherit maximum-bottleneck paths from the source; reverse-path
// protocols inherit the bottleneck of the wrong direction.

// WidestRouting bundles routing tables selected for maximum bottleneck
// bandwidth with the resulting per-pair bottlenecks.
type WidestRouting struct {
	*Routing
	// bottleneck[from][to] is the bandwidth of the selected path's
	// narrowest link (0 when unreachable or from == to). Rows alias one
	// flat backing array.
	bottleneck [][]int
}

// Bottleneck returns the selected path's narrowest directed bandwidth
// from -> to.
func (w *WidestRouting) Bottleneck(from, to topology.NodeID) int {
	return w.bottleneck[from][to]
}

// ComputeWidest builds, for every ordered pair, a path maximising the
// bottleneck bandwidth, with ties broken by lower additive cost and
// then by node order (deterministic). The embedded Routing reports the
// additive cost and next hops of the SELECTED paths, so it plugs into
// the simulator exactly like delay-based tables. Like Compute, the
// per-source rows are views into flat contiguous arrays and one
// scratch heap serves every source.
func ComputeWidest(g *topology.Graph) *WidestRouting {
	n := g.NumNodes()
	w := &WidestRouting{
		Routing: &Routing{
			g:        g,
			next:     make([][]topology.NodeID, n),
			dist:     make([][]int, n),
			nextFlat: make([]topology.NodeID, n*n),
			distFlat: make([]int, n*n),
		},
		bottleneck: make([][]int, n),
	}
	bottleFlat := make([]int, n*n)
	sc := &wpScratch{heap: make([]wpItem, 0, n), done: make([]bool, n)}
	for s := 0; s < n; s++ {
		w.Routing.next[s] = w.Routing.nextFlat[s*n : (s+1)*n : (s+1)*n]
		w.Routing.dist[s] = w.Routing.distFlat[s*n : (s+1)*n : (s+1)*n]
		w.bottleneck[s] = bottleFlat[s*n : (s+1)*n : (s+1)*n]
		widestInto(g, topology.NodeID(s), w.Routing.next[s], w.Routing.dist[s], w.bottleneck[s], sc)
	}
	return w
}

// wpItem orders the widest-path heap: wider bottleneck first, then
// cheaper cost, then lower node id.
type wpItem struct {
	node   topology.NodeID
	bottle int
	cost   int
}

// wpScratch is the reusable widest-path working state. The heap keeps
// the lazy-deletion discipline of the original container/heap version
// (duplicates allowed, stale entries skipped via done), just without
// the interface dispatch and per-push allocations.
type wpScratch struct {
	heap []wpItem
	done []bool
}

func wpBefore(a, b wpItem) bool {
	if a.bottle != b.bottle {
		return a.bottle > b.bottle
	}
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.node < b.node
}

func (sc *wpScratch) push(it wpItem) {
	sc.heap = append(sc.heap, it)
	i := len(sc.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !wpBefore(sc.heap[i], sc.heap[parent]) {
			break
		}
		sc.heap[i], sc.heap[parent] = sc.heap[parent], sc.heap[i]
		i = parent
	}
}

func (sc *wpScratch) pop() wpItem {
	h := sc.heap
	it := h[0]
	n := len(h) - 1
	h[0] = h[n]
	sc.heap = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && wpBefore(sc.heap[r], sc.heap[l]) {
			least = r
		}
		if !wpBefore(sc.heap[least], sc.heap[i]) {
			break
		}
		sc.heap[i], sc.heap[least] = sc.heap[least], sc.heap[i]
		i = least
	}
	return it
}

const maxInt = int(^uint(0) >> 1)

func widestInto(g *topology.Graph, s topology.NodeID, first []topology.NodeID, cost, bottle []int, sc *wpScratch) {
	for i := range first {
		first[i] = topology.None
		cost[i] = Infinity
		bottle[i] = 0
		sc.done[i] = false
	}
	bottle[s] = maxInt
	cost[s] = 0

	sc.heap = sc.heap[:0]
	sc.push(wpItem{node: s, bottle: maxInt, cost: 0})
	for len(sc.heap) > 0 {
		it := sc.pop()
		v := it.node
		if sc.done[v] {
			continue
		}
		sc.done[v] = true
		for _, nb := range g.Neighbors(v) {
			bw := g.Bandwidth(v, nb.To)
			cand := min(bottle[v], bw)
			nc := AddDist(cost[v], nb.Cost)
			better := cand > bottle[nb.To] ||
				(cand == bottle[nb.To] && nc < cost[nb.To])
			if !better || sc.done[nb.To] {
				continue
			}
			bottle[nb.To] = cand
			cost[nb.To] = nc
			if v == s {
				first[nb.To] = nb.To
			} else {
				first[nb.To] = first[v]
			}
			sc.push(wpItem{node: nb.To, bottle: cand, cost: nc})
		}
	}
	bottle[s] = 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
