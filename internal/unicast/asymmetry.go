package unicast

import (
	"math/rand"

	"hbh/internal/topology"
)

// AsymmetrySampleDefault is the default pair budget for
// EstimateAsymmetryFraction. 2000 sampled pairs put the estimator's
// standard error near 1% — plenty for the diagnostic "is this topology
// realistically asymmetric" question topogen answers.
const AsymmetrySampleDefault = 2000

// EstimateAsymmetryFraction returns the fraction of unordered router
// pairs whose forward and reverse shortest paths differ. Below the
// fast-path threshold (or whenever the pair count fits the budget) it
// enumerates every pair and the result is exact — identical to
// Routing.AsymmetryFraction. Above it, it measures maxPairs
// seeded-random pairs, because the exhaustive walk is O(n²·pathlen):
// at 50k routers that is ~10⁹ path reconstructions, each of which
// would also fault per-source rows into a lazy router. maxPairs <= 0
// selects AsymmetrySampleDefault.
func EstimateAsymmetryFraction(r Router, seed int64, maxPairs int) float64 {
	if maxPairs <= 0 {
		maxPairs = AsymmetrySampleDefault
	}
	routers := r.Graph().Routers()
	n := len(routers)
	if n < 2 {
		return 0
	}
	pairs := n * (n - 1) / 2
	if n < FastPathThreshold && pairs <= maxPairs {
		asym := 0
		for i, a := range routers {
			for _, b := range routers[i+1:] {
				if Asymmetric(r, a, b) {
					asym++
				}
			}
		}
		return float64(asym) / float64(pairs)
	}
	rng := rand.New(rand.NewSource(seed))
	asym := 0
	for k := 0; k < maxPairs; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		var a, b topology.NodeID = routers[i], routers[j]
		if Asymmetric(r, a, b) {
			asym++
		}
	}
	return float64(asym) / float64(maxPairs)
}
