// Package unicast implements the unicast routing substrate: per-node
// shortest-path routing tables computed with Dijkstra over the directed
// link costs.
//
// Because the two directions of a link carry independent costs, the
// shortest path from A to B generally differs from the reverse of the
// shortest path from B to A. This asymmetry is the central phenomenon
// the paper studies: every multicast protocol in the reproduction
// forwards packets (and control messages) along these tables, and the
// difference between forward shortest-path trees (HBH) and reverse
// shortest-path trees (PIM) falls out of it.
package unicast

import (
	"fmt"
	"math"
	"slices"

	"hbh/internal/topology"
)

// Infinity is the distance reported for unreachable destinations.
const Infinity = math.MaxInt

// AddDist adds two distances, saturating at Infinity so that sums
// involving an unreachable leg can never overflow into a small (or
// negative) "reachable" value. Use it whenever combining Dist results
// or extending a distance by a link cost that might be Infinity.
func AddDist(a, b int) int {
	if a == Infinity || b == Infinity || a > Infinity-b {
		return Infinity
	}
	return a + b
}

// Routing holds the full set of unicast routing tables for one graph:
// for every ordered pair (from, to), the next hop on and the total cost
// of the shortest directed path from -> to. Tables are computed eagerly
// by Compute; after mutating costs or link state call Recompute (all
// sources) or RecomputeLinks (only the sources a changed link can have
// affected) to converge them again.
//
// The per-source rows are views into two flat contiguous backing
// arrays, and the Dijkstra working state (indexed heap, positions) is
// retained on the Routing and reused, so Recompute/RecomputeLinks run
// allocation-free — the experiment sweeps recompute tables hundreds of
// thousands of times.
type Routing struct {
	g *topology.Graph
	// next[from][to] is the first hop on the shortest path from->to,
	// topology.None when unreachable or from == to. Rows alias nextFlat.
	next [][]topology.NodeID
	// dist[from][to] is the cost of that path, Infinity if unreachable.
	// Rows alias distFlat.
	dist [][]int

	nextFlat []topology.NodeID
	distFlat []int
	scratch  *sptScratch
}

// Compute builds routing tables for g by running Dijkstra from every
// node over the directed costs. Ties are broken deterministically
// (lowest finalisation order by (distance, node ID)), so two runs over
// identical costs produce identical tables — required for reproducible
// experiments.
func Compute(g *topology.Graph) *Routing {
	n := g.NumNodes()
	r := &Routing{
		g:        g,
		next:     make([][]topology.NodeID, n),
		dist:     make([][]int, n),
		nextFlat: make([]topology.NodeID, n*n),
		distFlat: make([]int, n*n),
		scratch:  newSPTScratch(n),
	}
	for s := 0; s < n; s++ {
		r.next[s] = r.nextFlat[s*n : (s+1)*n : (s+1)*n]
		r.dist[s] = r.distFlat[s*n : (s+1)*n : (s+1)*n]
	}
	r.Recompute()
	return r
}

// sptScratch is the reusable Dijkstra working state: an indexed 4-ary
// min-heap of frontier nodes with decrease-key support. One instance
// serves every source of a Routing in turn (a Routing is never
// recomputed concurrently), so per-source runs allocate nothing.
//
// The shape is chosen for the memory system, not for elegance — at
// five-figure node counts the frontier is tens of thousands of entries
// and the heap is the whole cost of the substrate:
//
//   - Entries carry their own (distance, node) key rather than
//     indexing into the caller's dist array, whose random reads (two
//     per comparison, megabytes apart) otherwise dominate.
//   - 4-ary halves the sift depth of a binary heap, and the four
//     children of a node share one 64-byte cache line.
//   - Sifting moves a hole instead of swapping, so each level costs
//     one entry copy and one pos write rather than two of each.
//
// None of this changes results: pop returns the minimum of the current
// frontier under the strict total order (distance, node ID), which is
// independent of heap arity and sift strategy, so the pop sequence —
// and hence every routing table — is bit-identical to the original
// binary-heap implementation.
type sptItem struct {
	d int
	v topology.NodeID
}

type sptScratch struct {
	heap []sptItem
	// pos[v] is v's index in heap, -1 when not queued. int32 keeps the
	// array compact; topologies are far below 2^31 nodes. A completed
	// Dijkstra run pops every entry it pushed, restoring all -1s, so
	// runs never need to re-clear it.
	pos []int32
	// buckets and live are the Dial bucket-queue working state (see
	// dial). Each run drains every bucket it fills, so they need no
	// per-run clearing either.
	buckets [][]topology.NodeID
	live    []topology.NodeID
}

func newSPTScratch(n int) *sptScratch {
	sc := &sptScratch{heap: make([]sptItem, 0, n), pos: make([]int32, n)}
	for i := range sc.pos {
		sc.pos[i] = -1
	}
	return sc
}

// less orders frontier entries by (tentative distance, node ID) — the
// same deterministic tie-break the container/heap implementation used.
func less(a, b sptItem) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.v < b.v
}

// fix inserts v with distance d, or applies a decrease-key and
// restores its heap position (Dijkstra relaxations only ever lower a
// tentative distance, so a sift-up suffices).
func (sc *sptScratch) fix(v topology.NodeID, d int) {
	i := int(sc.pos[v])
	if i < 0 {
		sc.heap = append(sc.heap, sptItem{})
		i = len(sc.heap) - 1
	}
	it := sptItem{d: d, v: v}
	h := sc.heap
	for i > 0 {
		parent := (i - 1) / 4
		if !less(it, h[parent]) {
			break
		}
		h[i] = h[parent]
		sc.pos[h[i].v] = int32(i)
		i = parent
	}
	h[i] = it
	sc.pos[v] = int32(i)
}

// pop removes and returns the minimum frontier node.
func (sc *sptScratch) pop() topology.NodeID {
	h := sc.heap
	v := h[0].v
	sc.pos[v] = -1
	n := len(h) - 1
	it := h[n]
	sc.heap = h[:n]
	if n == 0 {
		return v
	}
	// Sift the displaced last entry down from the root.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		least := c
		for j := c + 1; j < end; j++ {
			if less(h[j], h[least]) {
				least = j
			}
		}
		if !less(h[least], it) {
			break
		}
		h[i] = h[least]
		sc.pos[h[i].v] = int32(i)
		i = least
	}
	h[i] = it
	sc.pos[it.v] = int32(i)
	return v
}

// dijkstraInto computes, for source s, the first hop and distance of
// the shortest directed path s -> x for every x, writing the results
// into the caller's rows. With decrease-key every node enters the heap
// at most once and is final when popped; the pop order over the unique
// key (distance, node ID) is identical to the previous lazy-deletion
// implementation, so the resulting tables are bit-identical.
func dijkstraInto(g *topology.Graph, s topology.NodeID, first []topology.NodeID, dist []int, sc *sptScratch) {
	for i := range dist {
		dist[i] = Infinity
		first[i] = topology.None
	}
	dist[s] = 0

	// Every graph enforces costs >= 1 (AddLink/SetLinkCost panic
	// otherwise), so the bucket-queue scan is always correct; it only
	// needs the cost bound to be small enough to size its circular
	// bucket array. That covers every topology in the repo — the heap
	// is the fallback for synthetic graphs with huge costs.
	if mc := g.MaxLinkCost(); mc > 0 && mc <= dialMaxCost {
		sc.dial(g, s, first, dist, mc)
		return
	}

	sc.heap = sc.heap[:0]
	sc.fix(s, 0)

	// Existence is structural (neighbors come from the adjacency), so
	// only the fault state needs checking — LinkEnabled's existence
	// scan would cost O(deg) per relaxed edge, quadratic in degree on
	// power-law hubs. And when no link is down (the overwhelmingly
	// common case) the per-edge check is hoisted out entirely.
	faulty := g.HasDownLinks()
	for len(sc.heap) > 0 {
		v := sc.pop()
		dv := dist[v]
		for _, nb := range g.Neighbors(v) {
			if faulty && !g.LinkUp(v, nb.To) {
				continue
			}
			nd := AddDist(dv, nb.Cost)
			if nd < dist[nb.To] {
				dist[nb.To] = nd
				if v == s {
					first[nb.To] = nb.To
				} else {
					first[nb.To] = first[v]
				}
				sc.fix(nb.To, nd)
			}
		}
	}
}

// dialMaxCost is the largest per-link cost for which dijkstraInto uses
// the Dial bucket queue; its circular array holds maxCost+1 buckets.
const dialMaxCost = 1 << 12

// dial is the bucket-queue (Dial's algorithm) shortest-path scan used
// when link costs are small positive integers — every real topology
// here draws costs in [1,10]. Frontier nodes live in a circular array
// of maxCost+1 distance-indexed buckets; processing distances in
// increasing order replaces every comparison-heap operation (and its
// cache-missing sift walks) with an append and a filter pass.
//
// Pop order is identical to the heap's: because all costs are >= 1, a
// relaxation from a distance-d node can only push entries at d+1 or
// beyond, so bucket d is complete before its first entry is processed
// — sorting it by node ID then yields exactly the strict (distance,
// node ID) total order. Decrease-key is lazy: the old entry stays in
// its bucket and is dropped by the dist[v] == d liveness check when
// its distance comes up. Stale entries from earlier wraps of the
// circular array fail the same check.
func (sc *sptScratch) dial(g *topology.Graph, s topology.NodeID, first []topology.NodeID, dist []int, maxCost int) {
	size := maxCost + 1
	if len(sc.buckets) < size {
		sc.buckets = make([][]topology.NodeID, size)
	}
	buckets := sc.buckets
	faulty := g.HasDownLinks()
	buckets[0] = append(buckets[0], s)
	remaining := 1
	for d := 0; remaining > 0; d++ {
		slot := d % size
		b := buckets[slot]
		if len(b) == 0 {
			continue
		}
		live := sc.live[:0]
		for _, v := range b {
			if dist[v] == d {
				live = append(live, v)
			}
		}
		remaining -= len(b)
		buckets[slot] = b[:0]
		slices.Sort(live)
		for _, v := range live {
			for _, nb := range g.Neighbors(v) {
				if faulty && !g.LinkUp(v, nb.To) {
					continue
				}
				nd := d + nb.Cost
				if nd < dist[nb.To] {
					dist[nb.To] = nd
					if v == s {
						first[nb.To] = nb.To
					} else {
						first[nb.To] = first[v]
					}
					buckets[nd%size] = append(buckets[nd%size], nb.To)
					remaining++
				}
			}
		}
		sc.live = live[:0]
	}
}

// NextHop returns the first hop on the shortest path from -> to.
// Returns topology.None when from == to or to is unreachable.
func (r *Routing) NextHop(from, to topology.NodeID) topology.NodeID {
	return r.next[from][to]
}

// Dist returns the cost of the shortest directed path from -> to
// (0 when from == to, Infinity when unreachable).
func (r *Routing) Dist(from, to topology.NodeID) int {
	return r.dist[from][to]
}

// Reachable reports whether to can be reached from from.
func (r *Routing) Reachable(from, to topology.NodeID) bool {
	return r.dist[from][to] != Infinity
}

// Path returns the node sequence of the shortest directed path
// from -> to, inclusive of both endpoints. Returns nil when to is
// unreachable; returns [from] when from == to.
func (r *Routing) Path(from, to topology.NodeID) []topology.NodeID {
	if from == to {
		return []topology.NodeID{from}
	}
	if !r.Reachable(from, to) {
		return nil
	}
	path := []topology.NodeID{from}
	cur := from
	for cur != to {
		nxt := r.next[cur][to]
		if nxt == topology.None {
			panic(fmt.Sprintf("unicast: broken table %d->%d at %d", from, to, cur))
		}
		path = append(path, nxt)
		cur = nxt
	}
	return path
}

// PathLinks returns the directed links of the shortest path from -> to
// as (a, b) hops. Nil when unreachable or from == to.
func (r *Routing) PathLinks(from, to topology.NodeID) [][2]topology.NodeID {
	p := r.Path(from, to)
	if len(p) < 2 {
		return nil
	}
	links := make([][2]topology.NodeID, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		links = append(links, [2]topology.NodeID{p[i], p[i+1]})
	}
	return links
}

// Asymmetric reports whether the shortest path a -> b differs from the
// reverse of the shortest path b -> a, node-by-node. This is the
// paper's notion of a routing asymmetry between two sites.
func (r *Routing) Asymmetric(a, b topology.NodeID) bool {
	fwd := r.Path(a, b)
	rev := r.Path(b, a)
	if len(fwd) != len(rev) {
		return true
	}
	for i := range fwd {
		if fwd[i] != rev[len(rev)-1-i] {
			return true
		}
	}
	return false
}

// AsymmetryFraction returns the fraction of ordered router pairs whose
// forward and reverse shortest paths differ. Diagnostic used by the
// asymmetry-sweep experiment and by tests that validate the substrate
// actually produces asymmetric routes (Paxson's measurements motivate
// the paper; ~30-50% of pairs asymmetric is realistic).
func (r *Routing) AsymmetryFraction() float64 {
	routers := r.g.Routers()
	pairs, asym := 0, 0
	for i, a := range routers {
		for _, b := range routers[i+1:] {
			pairs++
			if r.Asymmetric(a, b) {
				asym++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(asym) / float64(pairs)
}

// Graph returns the graph these tables were computed over.
func (r *Routing) Graph() *topology.Graph { return r.g }
