// Package unicast implements the unicast routing substrate: per-node
// shortest-path routing tables computed with Dijkstra over the directed
// link costs.
//
// Because the two directions of a link carry independent costs, the
// shortest path from A to B generally differs from the reverse of the
// shortest path from B to A. This asymmetry is the central phenomenon
// the paper studies: every multicast protocol in the reproduction
// forwards packets (and control messages) along these tables, and the
// difference between forward shortest-path trees (HBH) and reverse
// shortest-path trees (PIM) falls out of it.
package unicast

import (
	"container/heap"
	"fmt"
	"math"

	"hbh/internal/topology"
)

// Infinity is the distance reported for unreachable destinations.
const Infinity = math.MaxInt

// Routing holds the full set of unicast routing tables for one graph:
// for every ordered pair (from, to), the next hop on and the total cost
// of the shortest directed path from -> to. Tables are computed eagerly
// by Compute; after mutating costs or link state call Recompute (all
// sources) or RecomputeLinks (only the sources a changed link can have
// affected) to converge them again.
type Routing struct {
	g *topology.Graph
	// next[from][to] is the first hop on the shortest path from->to,
	// topology.None when unreachable or from == to.
	next [][]topology.NodeID
	// dist[from][to] is the cost of that path, Infinity if unreachable.
	dist [][]int
}

// Compute builds routing tables for g by running Dijkstra from every
// node over the directed costs. Ties are broken deterministically
// (lowest finalisation order by (distance, node ID)), so two runs over
// identical costs produce identical tables — required for reproducible
// experiments.
func Compute(g *topology.Graph) *Routing {
	n := g.NumNodes()
	r := &Routing{
		g:    g,
		next: make([][]topology.NodeID, n),
		dist: make([][]int, n),
	}
	for s := 0; s < n; s++ {
		r.next[s], r.dist[s] = dijkstra(g, topology.NodeID(s))
	}
	return r
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node topology.NodeID
	dist int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// dijkstra computes, for source s, the first hop and distance of the
// shortest directed path s -> x for every x.
func dijkstra(g *topology.Graph, s topology.NodeID) ([]topology.NodeID, []int) {
	n := g.NumNodes()
	dist := make([]int, n)
	first := make([]topology.NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Infinity
		first[i] = topology.None
	}
	dist[s] = 0

	q := &pq{{node: s, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, nb := range g.Neighbors(v) {
			if !g.LinkEnabled(v, nb.To) {
				continue
			}
			nd := dist[v] + nb.Cost
			if nd < dist[nb.To] {
				dist[nb.To] = nd
				if v == s {
					first[nb.To] = nb.To
				} else {
					first[nb.To] = first[v]
				}
				heap.Push(q, pqItem{node: nb.To, dist: nd})
			}
		}
	}
	return first, dist
}

// NextHop returns the first hop on the shortest path from -> to.
// Returns topology.None when from == to or to is unreachable.
func (r *Routing) NextHop(from, to topology.NodeID) topology.NodeID {
	return r.next[from][to]
}

// Dist returns the cost of the shortest directed path from -> to
// (0 when from == to, Infinity when unreachable).
func (r *Routing) Dist(from, to topology.NodeID) int {
	return r.dist[from][to]
}

// Reachable reports whether to can be reached from from.
func (r *Routing) Reachable(from, to topology.NodeID) bool {
	return r.dist[from][to] != Infinity
}

// Path returns the node sequence of the shortest directed path
// from -> to, inclusive of both endpoints. Returns nil when to is
// unreachable; returns [from] when from == to.
func (r *Routing) Path(from, to topology.NodeID) []topology.NodeID {
	if from == to {
		return []topology.NodeID{from}
	}
	if !r.Reachable(from, to) {
		return nil
	}
	path := []topology.NodeID{from}
	cur := from
	for cur != to {
		nxt := r.next[cur][to]
		if nxt == topology.None {
			panic(fmt.Sprintf("unicast: broken table %d->%d at %d", from, to, cur))
		}
		path = append(path, nxt)
		cur = nxt
	}
	return path
}

// PathLinks returns the directed links of the shortest path from -> to
// as (a, b) hops. Nil when unreachable or from == to.
func (r *Routing) PathLinks(from, to topology.NodeID) [][2]topology.NodeID {
	p := r.Path(from, to)
	if len(p) < 2 {
		return nil
	}
	links := make([][2]topology.NodeID, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		links = append(links, [2]topology.NodeID{p[i], p[i+1]})
	}
	return links
}

// Asymmetric reports whether the shortest path a -> b differs from the
// reverse of the shortest path b -> a, node-by-node. This is the
// paper's notion of a routing asymmetry between two sites.
func (r *Routing) Asymmetric(a, b topology.NodeID) bool {
	fwd := r.Path(a, b)
	rev := r.Path(b, a)
	if len(fwd) != len(rev) {
		return true
	}
	for i := range fwd {
		if fwd[i] != rev[len(rev)-1-i] {
			return true
		}
	}
	return false
}

// AsymmetryFraction returns the fraction of ordered router pairs whose
// forward and reverse shortest paths differ. Diagnostic used by the
// asymmetry-sweep experiment and by tests that validate the substrate
// actually produces asymmetric routes (Paxson's measurements motivate
// the paper; ~30-50% of pairs asymmetric is realistic).
func (r *Routing) AsymmetryFraction() float64 {
	routers := r.g.Routers()
	pairs, asym := 0, 0
	for i, a := range routers {
		for _, b := range routers[i+1:] {
			pairs++
			if r.Asymmetric(a, b) {
				asym++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(asym) / float64(pairs)
}

// Graph returns the graph these tables were computed over.
func (r *Routing) Graph() *topology.Graph { return r.g }
