// Package unicast implements the unicast routing substrate: per-node
// shortest-path routing tables computed with Dijkstra over the directed
// link costs.
//
// Because the two directions of a link carry independent costs, the
// shortest path from A to B generally differs from the reverse of the
// shortest path from B to A. This asymmetry is the central phenomenon
// the paper studies: every multicast protocol in the reproduction
// forwards packets (and control messages) along these tables, and the
// difference between forward shortest-path trees (HBH) and reverse
// shortest-path trees (PIM) falls out of it.
package unicast

import (
	"fmt"
	"math"

	"hbh/internal/topology"
)

// Infinity is the distance reported for unreachable destinations.
const Infinity = math.MaxInt

// AddDist adds two distances, saturating at Infinity so that sums
// involving an unreachable leg can never overflow into a small (or
// negative) "reachable" value. Use it whenever combining Dist results
// or extending a distance by a link cost that might be Infinity.
func AddDist(a, b int) int {
	if a == Infinity || b == Infinity || a > Infinity-b {
		return Infinity
	}
	return a + b
}

// Routing holds the full set of unicast routing tables for one graph:
// for every ordered pair (from, to), the next hop on and the total cost
// of the shortest directed path from -> to. Tables are computed eagerly
// by Compute; after mutating costs or link state call Recompute (all
// sources) or RecomputeLinks (only the sources a changed link can have
// affected) to converge them again.
//
// The per-source rows are views into two flat contiguous backing
// arrays, and the Dijkstra working state (indexed heap, positions) is
// retained on the Routing and reused, so Recompute/RecomputeLinks run
// allocation-free — the experiment sweeps recompute tables hundreds of
// thousands of times.
type Routing struct {
	g *topology.Graph
	// next[from][to] is the first hop on the shortest path from->to,
	// topology.None when unreachable or from == to. Rows alias nextFlat.
	next [][]topology.NodeID
	// dist[from][to] is the cost of that path, Infinity if unreachable.
	// Rows alias distFlat.
	dist [][]int

	nextFlat []topology.NodeID
	distFlat []int
	scratch  *sptScratch
}

// Compute builds routing tables for g by running Dijkstra from every
// node over the directed costs. Ties are broken deterministically
// (lowest finalisation order by (distance, node ID)), so two runs over
// identical costs produce identical tables — required for reproducible
// experiments.
func Compute(g *topology.Graph) *Routing {
	n := g.NumNodes()
	r := &Routing{
		g:        g,
		next:     make([][]topology.NodeID, n),
		dist:     make([][]int, n),
		nextFlat: make([]topology.NodeID, n*n),
		distFlat: make([]int, n*n),
		scratch:  newSPTScratch(n),
	}
	for s := 0; s < n; s++ {
		r.next[s] = r.nextFlat[s*n : (s+1)*n : (s+1)*n]
		r.dist[s] = r.distFlat[s*n : (s+1)*n : (s+1)*n]
	}
	r.Recompute()
	return r
}

// sptScratch is the reusable Dijkstra working state: an indexed binary
// min-heap of frontier nodes with decrease-key support. One instance
// serves every source of a Routing in turn (a Routing is never
// recomputed concurrently), so per-source runs allocate nothing.
type sptScratch struct {
	heap []topology.NodeID
	// pos[v] is v's index in heap, -1 when not queued. int32 keeps the
	// array compact; topologies are far below 2^31 nodes.
	pos []int32
}

func newSPTScratch(n int) *sptScratch {
	return &sptScratch{heap: make([]topology.NodeID, 0, n), pos: make([]int32, n)}
}

// less orders frontier nodes by (tentative distance, node ID) — the
// same deterministic tie-break the container/heap implementation used.
func (sc *sptScratch) less(a, b topology.NodeID, dist []int) bool {
	if dist[a] != dist[b] {
		return dist[a] < dist[b]
	}
	return a < b
}

func (sc *sptScratch) swap(i, j int) {
	h := sc.heap
	h[i], h[j] = h[j], h[i]
	sc.pos[h[i]] = int32(i)
	sc.pos[h[j]] = int32(j)
}

// fix inserts v or restores its heap position after a decrease-key
// (Dijkstra relaxations only ever lower a tentative distance, so a
// sift-up suffices).
func (sc *sptScratch) fix(v topology.NodeID, dist []int) {
	i := int(sc.pos[v])
	if i < 0 {
		sc.heap = append(sc.heap, v)
		i = len(sc.heap) - 1
		sc.pos[v] = int32(i)
	}
	for i > 0 {
		parent := (i - 1) / 2
		if !sc.less(sc.heap[i], sc.heap[parent], dist) {
			break
		}
		sc.swap(i, parent)
		i = parent
	}
}

// pop removes and returns the minimum frontier node.
func (sc *sptScratch) pop(dist []int) topology.NodeID {
	h := sc.heap
	v := h[0]
	n := len(h) - 1
	sc.swap(0, n)
	sc.pos[v] = -1
	sc.heap = h[:n]
	// sift down from the root.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && sc.less(sc.heap[r], sc.heap[l], dist) {
			least = r
		}
		if !sc.less(sc.heap[least], sc.heap[i], dist) {
			break
		}
		sc.swap(i, least)
		i = least
	}
	return v
}

// dijkstraInto computes, for source s, the first hop and distance of
// the shortest directed path s -> x for every x, writing the results
// into the caller's rows. With decrease-key every node enters the heap
// at most once and is final when popped; the pop order over the unique
// key (distance, node ID) is identical to the previous lazy-deletion
// implementation, so the resulting tables are bit-identical.
func dijkstraInto(g *topology.Graph, s topology.NodeID, first []topology.NodeID, dist []int, sc *sptScratch) {
	for i := range dist {
		dist[i] = Infinity
		first[i] = topology.None
		sc.pos[i] = -1
	}
	dist[s] = 0
	sc.heap = sc.heap[:0]
	sc.fix(s, dist)

	for len(sc.heap) > 0 {
		v := sc.pop(dist)
		dv := dist[v]
		for _, nb := range g.Neighbors(v) {
			if !g.LinkEnabled(v, nb.To) {
				continue
			}
			nd := AddDist(dv, nb.Cost)
			if nd < dist[nb.To] {
				dist[nb.To] = nd
				if v == s {
					first[nb.To] = nb.To
				} else {
					first[nb.To] = first[v]
				}
				sc.fix(nb.To, dist)
			}
		}
	}
}

// NextHop returns the first hop on the shortest path from -> to.
// Returns topology.None when from == to or to is unreachable.
func (r *Routing) NextHop(from, to topology.NodeID) topology.NodeID {
	return r.next[from][to]
}

// Dist returns the cost of the shortest directed path from -> to
// (0 when from == to, Infinity when unreachable).
func (r *Routing) Dist(from, to topology.NodeID) int {
	return r.dist[from][to]
}

// Reachable reports whether to can be reached from from.
func (r *Routing) Reachable(from, to topology.NodeID) bool {
	return r.dist[from][to] != Infinity
}

// Path returns the node sequence of the shortest directed path
// from -> to, inclusive of both endpoints. Returns nil when to is
// unreachable; returns [from] when from == to.
func (r *Routing) Path(from, to topology.NodeID) []topology.NodeID {
	if from == to {
		return []topology.NodeID{from}
	}
	if !r.Reachable(from, to) {
		return nil
	}
	path := []topology.NodeID{from}
	cur := from
	for cur != to {
		nxt := r.next[cur][to]
		if nxt == topology.None {
			panic(fmt.Sprintf("unicast: broken table %d->%d at %d", from, to, cur))
		}
		path = append(path, nxt)
		cur = nxt
	}
	return path
}

// PathLinks returns the directed links of the shortest path from -> to
// as (a, b) hops. Nil when unreachable or from == to.
func (r *Routing) PathLinks(from, to topology.NodeID) [][2]topology.NodeID {
	p := r.Path(from, to)
	if len(p) < 2 {
		return nil
	}
	links := make([][2]topology.NodeID, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		links = append(links, [2]topology.NodeID{p[i], p[i+1]})
	}
	return links
}

// Asymmetric reports whether the shortest path a -> b differs from the
// reverse of the shortest path b -> a, node-by-node. This is the
// paper's notion of a routing asymmetry between two sites.
func (r *Routing) Asymmetric(a, b topology.NodeID) bool {
	fwd := r.Path(a, b)
	rev := r.Path(b, a)
	if len(fwd) != len(rev) {
		return true
	}
	for i := range fwd {
		if fwd[i] != rev[len(rev)-1-i] {
			return true
		}
	}
	return false
}

// AsymmetryFraction returns the fraction of ordered router pairs whose
// forward and reverse shortest paths differ. Diagnostic used by the
// asymmetry-sweep experiment and by tests that validate the substrate
// actually produces asymmetric routes (Paxson's measurements motivate
// the paper; ~30-50% of pairs asymmetric is realistic).
func (r *Routing) AsymmetryFraction() float64 {
	routers := r.g.Routers()
	pairs, asym := 0, 0
	for i, a := range routers {
		for _, b := range routers[i+1:] {
			pairs++
			if r.Asymmetric(a, b) {
				asym++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(asym) / float64(pairs)
}

// Graph returns the graph these tables were computed over.
func (r *Routing) Graph() *topology.Graph { return r.g }
