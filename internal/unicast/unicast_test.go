package unicast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hbh/internal/addr"
	"hbh/internal/topology"
)

// diamond builds:
//
//	    B
//	  /   \
//	A       D
//	  \   /
//	    C
//
// with configurable directed costs.
func diamond(ab, ba, bd, db, ac, ca, cd, dc int) *topology.Graph {
	g := topology.New()
	a := g.AddNode(topology.Router, addr.RouterAddr(0), "A")
	b := g.AddNode(topology.Router, addr.RouterAddr(1), "B")
	c := g.AddNode(topology.Router, addr.RouterAddr(2), "C")
	d := g.AddNode(topology.Router, addr.RouterAddr(3), "D")
	g.AddLink(a, b, ab, ba)
	g.AddLink(b, d, bd, db)
	g.AddLink(a, c, ac, ca)
	g.AddLink(c, d, cd, dc)
	return g
}

func TestShortestPathBasics(t *testing.T) {
	// A->D: via B costs 2+2=4, via C costs 1+1=2.
	// D->A: via B costs 1+1=2, via C costs 9+9=18.
	g := diamond(2, 1, 2, 1, 1, 9, 1, 9)
	r := Compute(g)

	if d := r.Dist(0, 3); d != 2 {
		t.Errorf("dist A->D = %d, want 2", d)
	}
	if d := r.Dist(3, 0); d != 2 {
		t.Errorf("dist D->A = %d, want 2", d)
	}
	wantFwd := []topology.NodeID{0, 2, 3} // A C D
	gotFwd := r.Path(0, 3)
	for i := range wantFwd {
		if gotFwd[i] != wantFwd[i] {
			t.Fatalf("path A->D = %v, want %v", gotFwd, wantFwd)
		}
	}
	wantRev := []topology.NodeID{3, 1, 0} // D B A
	gotRev := r.Path(3, 0)
	for i := range wantRev {
		if gotRev[i] != wantRev[i] {
			t.Fatalf("path D->A = %v, want %v", gotRev, wantRev)
		}
	}
	if !r.Asymmetric(0, 3) {
		t.Error("A<->D not reported asymmetric")
	}
}

func TestSymmetricCostsSymmetricPaths(t *testing.T) {
	g := diamond(2, 2, 2, 2, 1, 1, 1, 1)
	r := Compute(g)
	if r.Asymmetric(0, 3) {
		t.Error("symmetric diamond reported asymmetric")
	}
	if r.AsymmetryFraction() != 0 {
		t.Errorf("asymmetry fraction = %v, want 0", r.AsymmetryFraction())
	}
}

func TestSelfAndNeighbors(t *testing.T) {
	g := topology.Line(3, false)
	r := Compute(g)
	if d := r.Dist(1, 1); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if n := r.NextHop(1, 1); n != topology.None {
		t.Errorf("self next hop = %d", n)
	}
	p := r.Path(1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Errorf("self path = %v", p)
	}
	if n := r.NextHop(0, 2); n != 1 {
		t.Errorf("next hop 0->2 = %d, want 1", n)
	}
	if links := r.PathLinks(0, 2); len(links) != 2 ||
		links[0] != [2]topology.NodeID{0, 1} || links[1] != [2]topology.NodeID{1, 2} {
		t.Errorf("PathLinks = %v", links)
	}
	if r.PathLinks(1, 1) != nil {
		t.Error("self PathLinks non-nil")
	}
}

// TestQuickRoutingInvariants checks Dijkstra invariants on random
// graphs with random costs:
//
//  1. d(v,v) == 0
//  2. the path from a to b exists for all pairs (connected graph),
//     starts at a, ends at b, follows existing links, and its total
//     cost equals Dist(a,b)
//  3. triangle inequality via next hops: Dist(a,b) == cost(a,next) +
//     Dist(next,b)
func TestQuickRoutingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Random(topology.RandomConfig{
			Routers: 5 + rng.Intn(18), AvgDegree: 3, Hosts: true,
		}, rng)
		g.RandomizeCosts(rng, 1, 10)
		r := Compute(g)
		n := g.NumNodes()
		for a := 0; a < n; a++ {
			if r.Dist(topology.NodeID(a), topology.NodeID(a)) != 0 {
				return false
			}
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				A, B := topology.NodeID(a), topology.NodeID(b)
				if !r.Reachable(A, B) {
					return false // connected graph: everything reachable
				}
				p := r.Path(A, B)
				if len(p) < 2 || p[0] != A || p[len(p)-1] != B {
					return false
				}
				total := 0
				for i := 0; i+1 < len(p); i++ {
					c := g.Cost(p[i], p[i+1])
					if c == 0 {
						return false // path uses a non-link
					}
					total += c
				}
				if total != r.Dist(A, B) {
					return false
				}
				next := r.NextHop(A, B)
				if g.Cost(A, next)+r.Dist(next, B) != r.Dist(A, B) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickShortestIsMinimal cross-checks Dijkstra against brute-force
// Bellman-Ford relaxation on small graphs.
func TestQuickShortestIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Random(topology.RandomConfig{
			Routers: 4 + rng.Intn(7), AvgDegree: 2.5, Hosts: false,
		}, rng)
		g.RandomizeCosts(rng, 1, 10)
		r := Compute(g)
		n := g.NumNodes()
		for s := 0; s < n; s++ {
			// Bellman-Ford from s.
			dist := make([]int, n)
			for i := range dist {
				dist[i] = 1 << 30
			}
			dist[s] = 0
			for iter := 0; iter < n; iter++ {
				for v := 0; v < n; v++ {
					for _, nb := range g.Neighbors(topology.NodeID(v)) {
						if dist[v]+nb.Cost < dist[nb.To] {
							dist[nb.To] = dist[v] + nb.Cost
						}
					}
				}
			}
			for v := 0; v < n; v++ {
				want := dist[v]
				got := r.Dist(topology.NodeID(s), topology.NodeID(v))
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicTables(t *testing.T) {
	// Equal-cost ties must resolve identically across recomputation.
	g := topology.ISP()
	// Unit costs everywhere: maximal ties.
	a := Compute(g)
	b := Compute(g)
	n := g.NumNodes()
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if a.NextHop(topology.NodeID(x), topology.NodeID(y)) !=
				b.NextHop(topology.NodeID(x), topology.NodeID(y)) {
				t.Fatalf("non-deterministic next hop %d->%d", x, y)
			}
		}
	}
}

func TestAsymmetryFractionRealistic(t *testing.T) {
	// With per-direction uniform costs the ISP topology should show a
	// substantial fraction of asymmetric routes (Paxson: ~30-50% in
	// the Internet; the paper's motivation).
	g := topology.ISP()
	g.RandomizeCosts(rand.New(rand.NewSource(123)), 1, 10)
	r := Compute(g)
	f := r.AsymmetryFraction()
	if f < 0.2 || f > 0.9 {
		t.Errorf("asymmetry fraction = %.2f, expected a substantial share", f)
	}
}

func TestHostsNeverTransit(t *testing.T) {
	// No shortest path between two routers may pass through a host.
	g := topology.ISP()
	g.RandomizeCosts(rand.New(rand.NewSource(7)), 1, 10)
	r := Compute(g)
	for _, a := range g.Routers() {
		for _, b := range g.Routers() {
			if a == b {
				continue
			}
			p := r.Path(a, b)
			for _, v := range p[1 : len(p)-1] {
				if g.Node(v).Kind == topology.Host {
					t.Fatalf("path %d->%d transits host %d", a, b, v)
				}
			}
		}
	}
}
