package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// approxEq compares with a relative tolerance: Merge is algebraically
// equal to sequential Add but not bit-equal (different float
// association).
func approxEq(got, want, rel float64) bool {
	if got == want {
		return true
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	return math.Abs(got-want) <= rel*scale
}

// TestMergeEqualsSequential: merging K shards equals one accumulator
// fed the concatenation, for every statistic the harness reports.
func TestMergeEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		shards := 1 + rng.Intn(8)
		var seq Accumulator
		accs := make([]Accumulator, shards)
		for s := range accs {
			// Uneven shard sizes, including empty shards.
			for i := rng.Intn(40); i > 0; i-- {
				// Mixed scales stress the combine formula.
				x := (rng.Float64() - 0.3) * math.Pow(10, float64(rng.Intn(4)))
				seq.Add(x)
				accs[s].Add(x)
			}
		}
		var merged Accumulator
		for s := range accs {
			merged.Merge(&accs[s])
		}
		if merged.N() != seq.N() {
			t.Fatalf("trial %d: N %d != %d", trial, merged.N(), seq.N())
		}
		if seq.N() == 0 {
			continue
		}
		if merged.Min() != seq.Min() || merged.Max() != seq.Max() {
			t.Fatalf("trial %d: min/max %v/%v != %v/%v",
				trial, merged.Min(), merged.Max(), seq.Min(), seq.Max())
		}
		const rel = 1e-9
		if !approxEq(merged.Mean(), seq.Mean(), rel) {
			t.Fatalf("trial %d: mean %v != %v", trial, merged.Mean(), seq.Mean())
		}
		if !approxEq(merged.Variance(), seq.Variance(), rel) {
			t.Fatalf("trial %d: variance %v != %v", trial, merged.Variance(), seq.Variance())
		}
		if !approxEq(merged.CI95(), seq.CI95(), rel) {
			t.Fatalf("trial %d: ci95 %v != %v", trial, merged.CI95(), seq.CI95())
		}
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Merge(&b)
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("empty-into-empty merge not a no-op")
	}
	b.Add(3)
	b.Add(5)
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 4 || a.Min() != 3 || a.Max() != 5 {
		t.Fatalf("empty-target merge wrong: %+v", a)
	}
	var c Accumulator
	a.Merge(&c)
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatal("empty-source merge changed target")
	}
}
