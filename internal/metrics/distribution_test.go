package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistributionExactQuantiles(t *testing.T) {
	d := NewDistribution(1000)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.95, 95.05},
	}
	for _, c := range cases {
		if got := d.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if d.N() != 100 {
		t.Errorf("N = %d", d.N())
	}
	if m := d.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
}

func TestDistributionEmptyAndBounds(t *testing.T) {
	d := NewDistribution(100)
	if !math.IsNaN(d.Quantile(0.5)) || !math.IsNaN(d.Mean()) {
		t.Error("empty distribution must report NaN")
	}
	d.Add(7)
	if d.Quantile(0.5) != 7 {
		t.Error("single sample quantile wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range quantile did not panic")
		}
	}()
	d.Quantile(1.5)
}

func TestDistributionDecimationBounded(t *testing.T) {
	d := NewDistribution(100)
	for i := 0; i < 100000; i++ {
		d.Add(float64(i % 1000))
	}
	if len(d.vals) > 100 {
		t.Errorf("retained %d samples, cap 100", len(d.vals))
	}
	if d.N() != 100000 {
		t.Errorf("N = %d", d.N())
	}
	// Quantiles remain sane after decimation.
	med := d.Quantile(0.5)
	if med < 300 || med > 700 {
		t.Errorf("median after decimation = %v, want ~500", med)
	}
}

// TestQuickQuantileMatchesSort: with no decimation, quantiles agree
// with the sorted-slice definition.
func TestQuickQuantileMatchesSort(t *testing.T) {
	f := func(seed int64, nRaw uint8, qRaw uint8) bool {
		n := 2 + int(nRaw)%200
		q := float64(qRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		d := NewDistribution(10000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			d.Add(xs[i])
		}
		sort.Float64s(xs)
		pos := q * float64(n-1)
		lo := int(pos)
		want := xs[lo]
		if lo < n-1 {
			frac := pos - float64(lo)
			want = xs[lo]*(1-frac) + xs[lo+1]*frac
		}
		return math.Abs(d.Quantile(q)-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
