package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Distribution collects individual samples for quantile reporting —
// the tail view that a mean hides. Samples are kept exactly up to a
// cap; beyond it, deterministic decimation keeps every k-th sample so
// the collector stays bounded without an RNG (determinism is a
// repository-wide invariant).
type Distribution struct {
	vals   []float64
	cap    int
	stride int // keep every stride-th sample once decimating
	skip   int
	n      int
}

// NewDistribution returns a collector bounded to roughly cap samples.
func NewDistribution(cap int) *Distribution {
	if cap < 10 {
		panic("metrics: distribution cap too small")
	}
	return &Distribution{cap: cap, stride: 1}
}

// Add folds one sample in.
func (d *Distribution) Add(x float64) {
	d.n++
	if d.skip > 0 {
		d.skip--
		return
	}
	d.skip = d.stride - 1
	d.vals = append(d.vals, x)
	if len(d.vals) >= d.cap {
		// Decimate: drop every other retained sample, double the
		// stride. Quantiles stay representative for smooth tails.
		half := d.vals[:0]
		for i := 0; i < len(d.vals); i += 2 {
			half = append(half, d.vals[i])
		}
		d.vals = half
		d.stride *= 2
	}
}

// N returns the number of samples observed (not retained).
func (d *Distribution) N() int { return d.n }

// Quantile returns the q-quantile (0 <= q <= 1) of the retained
// samples using linear interpolation. Returns NaN with no samples.
func (d *Distribution) Quantile(q float64) float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of [0,1]", q))
	}
	sorted := append([]float64(nil), d.vals...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the mean of the retained samples (NaN when empty).
func (d *Distribution) Mean() float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range d.vals {
		sum += v
	}
	return sum / float64(len(d.vals))
}
