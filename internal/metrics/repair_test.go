package metrics

import "testing"

// fill marks receiver r as having received probes [lo, hi).
func fill(m *DeliveryMatrix, r, lo, hi int) {
	for p := lo; p < hi; p++ {
		m.Delivered(r, p)
	}
}

func TestDeliveryMatrixBasics(t *testing.T) {
	m := NewDeliveryMatrix(2)
	for i := 0; i < 5; i++ {
		if p := m.Sent(float64(i * 10)); p != i {
			t.Fatalf("Sent returned index %d, want %d", p, i)
		}
	}
	if m.Receivers() != 2 || m.Probes() != 5 {
		t.Fatalf("shape = %dx%d", m.Receivers(), m.Probes())
	}
	if m.SendTime(3) != 30 {
		t.Errorf("SendTime(3) = %v", m.SendTime(3))
	}
	m.Delivered(0, 2)
	m.Delivered(0, 2) // duplicate marks are fine
	if !m.Received(0, 2) || m.Received(1, 2) {
		t.Error("Received bookkeeping wrong")
	}

	defer func() {
		if recover() == nil {
			t.Error("decreasing send time did not panic")
		}
	}()
	m.Sent(5)
}

func TestDeliveryRatioWindows(t *testing.T) {
	m := NewDeliveryMatrix(2)
	for i := 0; i < 10; i++ {
		m.Sent(float64(i * 10))
	}
	fill(m, 0, 0, 10) // receiver 0 gets everything
	fill(m, 1, 0, 3)  // receiver 1 blacks out for probes 3..6
	fill(m, 1, 7, 10)

	if r := m.DeliveryRatio(0, 100); r != 16.0/20.0 {
		t.Errorf("overall ratio = %v, want 0.8", r)
	}
	// The blackout window [30, 70): receiver 0 has 4/4, receiver 1 has 0/4.
	if r := m.DeliveryRatio(30, 70); r != 0.5 {
		t.Errorf("blackout-window ratio = %v, want 0.5", r)
	}
	if r := m.DeliveryRatio(200, 300); r != 1 {
		t.Errorf("empty-window ratio = %v, want 1", r)
	}
}

func TestBlackouts(t *testing.T) {
	m := NewDeliveryMatrix(1)
	for i := 0; i < 10; i++ {
		m.Sent(float64(i * 10))
	}
	// Received: 0,1  miss: 2,3  received: 4,5  miss: 6..9 (still open).
	fill(m, 0, 0, 2)
	fill(m, 0, 4, 6)

	bs := m.Blackouts(0)
	if len(bs) != 2 {
		t.Fatalf("blackouts = %+v", bs)
	}
	first, second := bs[0], bs[1]
	if first.Start != 20 || first.End != 40 || first.Missed != 2 || !first.Healed {
		t.Errorf("first blackout = %+v", first)
	}
	if first.Duration() != 20 {
		t.Errorf("first duration = %v", first.Duration())
	}
	if second.Start != 60 || second.End != 90 || second.Missed != 4 || second.Healed {
		t.Errorf("open blackout = %+v", second)
	}
	if m.MaxBlackout(0) != 30 {
		t.Errorf("MaxBlackout = %v, want 30", m.MaxBlackout(0))
	}
}

func TestRepairedAt(t *testing.T) {
	m := NewDeliveryMatrix(2)
	for i := 0; i < 10; i++ {
		m.Sent(float64(i * 10))
	}
	fill(m, 0, 0, 10)
	fill(m, 1, 0, 3) // fault hits receiver 1 from probe 3
	fill(m, 1, 6, 10)

	// Fault at t=30: receiver 1 misses probes 3..5, so the tree is whole
	// again from probe 6 (t=60) onward.
	at, ok := m.RepairedAt(30, 100)
	if !ok || at != 60 {
		t.Fatalf("RepairedAt = %v, %v; want 60, true", at, ok)
	}
	lat, ok := m.RepairLatency(30, 100)
	if !ok || lat != 30 {
		t.Errorf("RepairLatency = %v, %v; want 30, true", lat, ok)
	}

	// A window that ends inside the blackout has no repair point.
	if _, ok := m.RepairedAt(30, 60); ok {
		t.Error("repair reported inside an unhealed window")
	}
	// A receiver that never recovers blocks repair forever.
	m2 := NewDeliveryMatrix(2)
	for i := 0; i < 5; i++ {
		m2.Sent(float64(i))
	}
	fill(m2, 0, 0, 5)
	if _, ok := m2.RepairedAt(0, 10); ok {
		t.Error("repair reported with a permanently dark receiver")
	}
	// An empty window reports no repair.
	if _, ok := m.RepairedAt(500, 600); ok {
		t.Error("repair reported in an empty window")
	}
}
