// Package metrics provides the aggregation used by the experiment
// harness: streaming mean/variance (Welford) plus confidence
// intervals, so 500-run batches can be summarised without storing the
// samples.
package metrics

import (
	"fmt"
	"math"
)

// Accumulator is a streaming mean/variance aggregator. The zero value
// is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one sample in.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds another accumulator into a, as if every sample b saw had
// been Added to a (pairwise combine of Chan et al., "Updating Formulae
// and a Pairwise Algorithm for Computing Sample Variances"). Count,
// min and max merge exactly; mean and m2 are algebraically equal to
// the sequential result but may differ in the last float64 bits, so
// bit-reproducible outputs must not mix worker counts — the sharded
// runtime merges shards in a fixed order to keep any given worker
// count reproducible.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.n = n
}

// N returns the sample count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest sample (0 with no samples).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 with no samples).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance (0 with <2 samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// tCrit95 holds the two-tailed 95% Student-t critical values for
// degrees of freedom 1..29. Above that the normal approximation is
// within half a percent and z=1.96 takes over.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
	2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
	2.048, 2.045,
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean: Student-t critical values for n < 30 (a hardcoded z=1.96 would
// overstate confidence at the small-n grid points some sweeps
// produce), the normal approximation beyond. With fewer than two
// samples there is no interval and it returns 0.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	crit := 1.96
	if df := a.n - 1; df < 30 {
		crit = tCrit95[df-1]
	}
	return crit * a.StdErr()
}

// String renders "mean ± ci95 (n=..)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", a.Mean(), a.CI95(), a.n)
}

// Series is one plotted curve: y-aggregates indexed by x.
type Series struct {
	// Name is the legend label, e.g. "HBH".
	Name string
	// X holds the x-axis values in plot order.
	X []int
	// Y holds one aggregate per x value.
	Y []*Accumulator
}

// NewSeries allocates a series over the given x values.
func NewSeries(name string, xs []int) *Series {
	s := &Series{Name: name, X: append([]int(nil), xs...)}
	s.Y = make([]*Accumulator, len(xs))
	for i := range s.Y {
		s.Y[i] = &Accumulator{}
	}
	return s
}

// At returns the accumulator for x. Panics on unknown x: that is
// always a harness bug.
func (s *Series) At(x int) *Accumulator {
	for i, v := range s.X {
		if v == x {
			return s.Y[i]
		}
	}
	panic(fmt.Sprintf("metrics: series %q has no x=%d", s.Name, x))
}

// Means returns the per-x means in plot order.
func (s *Series) Means() []float64 {
	out := make([]float64, len(s.Y))
	for i, a := range s.Y {
		out[i] = a.Mean()
	}
	return out
}

// AvgMean returns the average of the per-x means, the "in average over
// all group sizes" figure the paper quotes for protocol gaps.
func (s *Series) AvgMean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, a := range s.Y {
		sum += a.Mean()
	}
	return sum / float64(len(s.Y))
}

// RelativeGap returns the mean relative advantage of s over other,
// averaged across x: mean((other - s) / other). Positive means s is
// lower/better. Both series must share the same x values.
func (s *Series) RelativeGap(other *Series) float64 {
	if len(s.X) != len(other.X) {
		panic("metrics: RelativeGap over mismatched series")
	}
	var sum float64
	var n int
	for i := range s.X {
		if s.X[i] != other.X[i] {
			panic("metrics: RelativeGap over mismatched x values")
		}
		o := other.Y[i].Mean()
		if o == 0 {
			continue
		}
		sum += (o - s.Y[i].Mean()) / o
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
