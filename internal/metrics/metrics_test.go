package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Std() != 0 || a.StdErr() != 0 {
		t.Error("zero accumulator not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Known dataset: population variance 4, sample variance 32/7.
	if got := a.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 || a.Min() != 3.5 || a.Max() != 3.5 {
		t.Errorf("single sample: %+v", a)
	}
}

// TestQuickWelfordMatchesNaive: the streaming computation agrees with
// the two-pass formula on random data.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%200
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.Float64()*1000 - 500
			a.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(a.Variance()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCI95Shrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Accumulator
	for i := 0; i < 10; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: %v -> %v", small.CI95(), large.CI95())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("HBH", []int{2, 4, 6})
	s.At(2).Add(10)
	s.At(2).Add(20)
	s.At(4).Add(30)
	s.At(6).Add(50)
	means := s.Means()
	if means[0] != 15 || means[1] != 30 || means[2] != 50 {
		t.Errorf("Means = %v", means)
	}
	if got := s.AvgMean(); math.Abs(got-(15+30+50)/3.0) > 1e-12 {
		t.Errorf("AvgMean = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("At(unknown x) did not panic")
		}
	}()
	s.At(99)
}

func TestRelativeGap(t *testing.T) {
	a := NewSeries("HBH", []int{1, 2})
	b := NewSeries("REUNITE", []int{1, 2})
	a.At(1).Add(90)
	b.At(1).Add(100)
	a.At(2).Add(50)
	b.At(2).Add(100)
	// Gaps: 10% and 50% -> mean 30%.
	if got := a.RelativeGap(b); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("RelativeGap = %v, want 0.3", got)
	}
	// Mismatched series panic.
	c := NewSeries("X", []int{1})
	defer func() {
		if recover() == nil {
			t.Error("mismatched RelativeGap did not panic")
		}
	}()
	a.RelativeGap(c)
}

// TestCI95StudentT pins the small-sample critical values: with n
// samples the half-width must use the Student-t quantile, not z=1.96 —
// at n=2 the difference is a factor of 6.5.
func TestCI95StudentT(t *testing.T) {
	cases := []struct {
		n    int
		crit float64
	}{
		{2, 12.706}, {3, 4.303}, {10, 2.262}, {30, 2.045}, {31, 1.96}, {500, 1.96},
	}
	for _, tc := range cases {
		var a Accumulator
		for i := 0; i < tc.n; i++ {
			a.Add(float64(i % 2)) // alternating 0/1: nonzero variance
		}
		want := tc.crit * a.StdErr()
		if got := a.CI95(); math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d: CI95 = %v, want %v (crit %v)", tc.n, got, want, tc.crit)
		}
	}
	var a Accumulator
	a.Add(1)
	if a.CI95() != 0 {
		t.Errorf("CI95 with one sample = %v, want 0", a.CI95())
	}
}
