package metrics

// This file holds the failure-recovery bookkeeping of the A10
// experiment: a DeliveryMatrix records which of a stream of periodic
// data probes each receiver actually got, and derives per-receiver
// blackout windows, windowed delivery ratios and the time-to-repair
// after a fault. Times are plain float64s (the simulator's time units)
// so the package stays dependency-free.

// Blackout is one contiguous run of probes a receiver missed.
type Blackout struct {
	// Start is the send time of the first missed probe, End the send
	// time of the first probe received again. For a blackout still open
	// at the end of the recording, End is the last probe's send time
	// and Healed is false.
	Start, End float64
	// Missed counts the probes lost in the run.
	Missed int
	// Healed reports whether delivery resumed before recording ended.
	Healed bool
}

// Duration returns End - Start.
func (b Blackout) Duration() float64 { return b.End - b.Start }

// DeliveryMatrix records periodic probe receptions per receiver.
// Create with NewDeliveryMatrix, mark each emission with Sent and each
// reception with Delivered.
type DeliveryMatrix struct {
	sendTimes []float64
	// got[r][p] reports whether receiver r got probe p.
	got [][]bool
}

// NewDeliveryMatrix returns a matrix for the given receiver count.
func NewDeliveryMatrix(receivers int) *DeliveryMatrix {
	if receivers < 1 {
		panic("metrics: DeliveryMatrix needs at least one receiver")
	}
	return &DeliveryMatrix{got: make([][]bool, receivers)}
}

// Sent records one probe emission at time t (times must be
// nondecreasing) and returns its probe index, which the caller maps to
// whatever identifies the packet in flight (a sequence number).
func (m *DeliveryMatrix) Sent(t float64) int {
	if n := len(m.sendTimes); n > 0 && t < m.sendTimes[n-1] {
		panic("metrics: probe send times must be nondecreasing")
	}
	m.sendTimes = append(m.sendTimes, t)
	for r := range m.got {
		m.got[r] = append(m.got[r], false)
	}
	return len(m.sendTimes) - 1
}

// Delivered marks probe p as received by receiver r. Duplicate marks
// are fine (redundant deliveries don't un-blackout anything twice).
func (m *DeliveryMatrix) Delivered(r, p int) { m.got[r][p] = true }

// Receivers returns the receiver count.
func (m *DeliveryMatrix) Receivers() int { return len(m.got) }

// Probes returns the number of probes sent so far.
func (m *DeliveryMatrix) Probes() int { return len(m.sendTimes) }

// SendTime returns the send time of probe p.
func (m *DeliveryMatrix) SendTime(p int) float64 { return m.sendTimes[p] }

// Received reports whether receiver r got probe p.
func (m *DeliveryMatrix) Received(r, p int) bool { return m.got[r][p] }

// window returns the probe index range [lo, hi) with send times in
// [from, to).
func (m *DeliveryMatrix) window(from, to float64) (lo, hi int) {
	lo = len(m.sendTimes)
	for i, t := range m.sendTimes {
		if t >= from {
			lo = i
			break
		}
	}
	hi = lo
	for hi < len(m.sendTimes) && m.sendTimes[hi] < to {
		hi++
	}
	return lo, hi
}

// DeliveryRatio returns received / expected over all receivers for
// probes sent in [from, to) — the blackout delivery-ratio metric.
// Returns 1 when no probe falls in the window.
func (m *DeliveryMatrix) DeliveryRatio(from, to float64) float64 {
	lo, hi := m.window(from, to)
	if hi == lo {
		return 1
	}
	expected := (hi - lo) * len(m.got)
	received := 0
	for _, row := range m.got {
		for p := lo; p < hi; p++ {
			if row[p] {
				received++
			}
		}
	}
	return float64(received) / float64(expected)
}

// Blackouts returns receiver r's missed-probe runs in time order.
func (m *DeliveryMatrix) Blackouts(r int) []Blackout {
	var out []Blackout
	row := m.got[r]
	for p := 0; p < len(row); {
		if row[p] {
			p++
			continue
		}
		b := Blackout{Start: m.sendTimes[p]}
		for p < len(row) && !row[p] {
			b.Missed++
			p++
		}
		if p < len(row) {
			b.End = m.sendTimes[p]
			b.Healed = true
		} else {
			b.End = m.sendTimes[len(row)-1]
		}
		out = append(out, b)
	}
	return out
}

// MaxBlackout returns receiver r's longest blackout duration (0 with
// none).
func (m *DeliveryMatrix) MaxBlackout(r int) float64 {
	max := 0.0
	for _, b := range m.Blackouts(r) {
		if d := b.Duration(); d > max {
			max = d
		}
	}
	return max
}

// RepairedAt returns the send time of the earliest probe at or after
// fault such that every receiver received every probe from there up to
// (but excluding) until — i.e. the moment the tree is verifiably
// serving everyone again and keeps doing so for the rest of the
// window. The second result is false when no such probe exists (the
// tree never fully repaired inside the window).
func (m *DeliveryMatrix) RepairedAt(fault, until float64) (float64, bool) {
	lo, hi := m.window(fault, until)
	if hi == lo {
		return 0, false
	}
	// Scan backwards for the first probe index from which every
	// receiver's suffix is all-received.
	good := hi
	for p := hi - 1; p >= lo; p-- {
		all := true
		for _, row := range m.got {
			if !row[p] {
				all = false
				break
			}
		}
		if !all {
			break
		}
		good = p
	}
	if good == hi {
		return 0, false
	}
	return m.sendTimes[good], true
}

// RepairLatency returns RepairedAt(fault, until) - fault: the
// time-to-repair after a fault injected at that time. The second
// result is false when the tree did not repair inside the window.
func (m *DeliveryMatrix) RepairLatency(fault, until float64) (float64, bool) {
	at, ok := m.RepairedAt(fault, until)
	if !ok {
		return 0, false
	}
	return at - fault, true
}
