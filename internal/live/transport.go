// Package live executes the protocol engines concurrently: one
// goroutine per hosted router/host over a real transport, instead of
// the single-threaded virtual-time loop in netsim. The engines
// themselves are untouched — they program against netsim.ProtoNode
// and clock.Clock, and this package supplies the live implementations
// of both. Run under the simulated clock and the in-process transport
// the runtime is deterministic and provably equivalent to the netsim
// path (see equivalence_test.go); run under the wall clock and UDP it
// is the hbhd daemon's engine room.
package live

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"hbh/internal/obs"
	"hbh/internal/packet"
	"hbh/internal/topology"
)

// frameOverhead is the transport framing prepended to every wire
// packet: the sender's node ID (4 bytes, big endian), the remaining
// hop budget (1 byte), the causal (episode, step) stamp (8+8 bytes),
// and two timestamps — origination and last-hop transmission (8+8
// bytes, nanoseconds of the sending process's stamp clock). The hop
// budget lives in the frame, not the packet header, exactly as netsim
// keeps it in the envelope: the paper's messages have no TTL field and
// the wire codec stays byte-identical between the simulator and the
// live runtime. The causal stamp extends the same idea across
// processes — netsim threads (episode, step) through its envelopes,
// the live transport threads it through its frames, so hbhtrace can
// merge per-daemon trace files into one causal DAG. The timestamps
// feed the wall-clock delivery and hop-delay histograms.
const frameOverhead = 37

// maxFrame bounds a received datagram.
const maxFrame = 64 * 1024

// frameMeta is the decoded transport framing: the in-flight metadata
// netsim keeps in its envelopes, carried over the wire instead.
type frameMeta struct {
	from topology.NodeID
	ttl  int
	// cause is the packet's causal pair: the episode it belongs to and
	// the step of the event that put it on the wire (the origination
	// send or the previous hop's forward).
	cause obs.Causal
	// origAt is the stamp-clock time the packet was originated; hopAt
	// the time the last hop transmitted this frame. Zero when unknown
	// (a frame from a pre-telemetry sender decodes as zero).
	origAt int64
	hopAt  int64
	// wire marks a frame that actually crossed the transport (set by
	// HandleFrame); self-deliveries re-processed in a fresh dispatch
	// never had a hop to measure.
	wire bool
}

// encodeFrame prepends the transport framing to a marshalled packet.
func encodeFrame(fm frameMeta, wire []byte) []byte {
	f := make([]byte, frameOverhead+len(wire))
	binary.BigEndian.PutUint32(f[0:4], uint32(fm.from))
	f[4] = uint8(fm.ttl)
	binary.BigEndian.PutUint64(f[5:13], uint64(fm.cause.Episode))
	binary.BigEndian.PutUint64(f[13:21], uint64(fm.cause.Step))
	binary.BigEndian.PutUint64(f[21:29], uint64(fm.origAt))
	binary.BigEndian.PutUint64(f[29:37], uint64(fm.hopAt))
	copy(f[frameOverhead:], wire)
	return f
}

// decodeFrame splits a frame into its metadata and the packet.
func decodeFrame(f []byte) (fm frameMeta, msg packet.Message, err error) {
	if len(f) < frameOverhead {
		return frameMeta{}, nil, fmt.Errorf("live: short frame (%d bytes)", len(f))
	}
	fm.from = topology.NodeID(binary.BigEndian.Uint32(f[0:4]))
	fm.ttl = int(f[4])
	fm.cause.Episode = obs.EpisodeID(binary.BigEndian.Uint64(f[5:13]))
	fm.cause.Step = obs.StepID(binary.BigEndian.Uint64(f[13:21]))
	fm.origAt = int64(binary.BigEndian.Uint64(f[21:29]))
	fm.hopAt = int64(binary.BigEndian.Uint64(f[29:37]))
	msg, err = packet.Unmarshal(f[frameOverhead:])
	return fm, msg, err
}

// DeliverFunc receives a frame addressed to hosted node to. Transports
// call it from their receive path; the runtime turns it into an
// arrival on to's goroutine (or event, under the simulated clock).
type DeliverFunc func(to topology.NodeID, frame []byte)

// Transport moves frames between adjacent nodes. Send must be safe
// for concurrent use; it delivers asynchronously except for the
// synchronous in-process transport the deterministic mode uses.
type Transport interface {
	Send(from, to topology.NodeID, frame []byte) error
	Close() error
}

// ChanTransport is the in-process transport: frames go straight to
// the runtime's deliver callback, either synchronously (buffer <= 0 —
// the deterministic simulated-clock mode, where the callback just
// schedules an arrival event) or through a buffered channel drained
// by a pump goroutine (the concurrent mode's loopback network).
type ChanTransport struct {
	deliver DeliverFunc

	mu     sync.Mutex
	ch     chan chanFrame
	closed bool
	wg     sync.WaitGroup
}

type chanFrame struct {
	to    topology.NodeID
	frame []byte
}

// NewChanTransport builds an in-process transport over deliver.
// buffer <= 0 selects synchronous delivery.
func NewChanTransport(deliver DeliverFunc, buffer int) *ChanTransport {
	t := &ChanTransport{deliver: deliver}
	if buffer > 0 {
		t.ch = make(chan chanFrame, buffer)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for f := range t.ch {
				t.deliver(f.to, f.frame)
			}
		}()
	}
	return t
}

// Send implements Transport.
func (t *ChanTransport) Send(from, to topology.NodeID, frame []byte) error {
	if t.ch == nil {
		t.deliver(to, frame)
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("live: send on closed transport")
	}
	t.ch <- chanFrame{to: to, frame: frame}
	t.mu.Unlock()
	return nil
}

// Close implements Transport. Buffered frames drain before it returns.
func (t *ChanTransport) Close() error {
	if t.ch != nil {
		t.mu.Lock()
		if !t.closed {
			t.closed = true
			close(t.ch)
		}
		t.mu.Unlock()
		t.wg.Wait()
	}
	return nil
}

// UDPTransport sends frames as UDP datagrams using a node address
// book (NodeID -> host:port). Every hosted node gets its own bound
// socket and read goroutine, so one process can host one router (the
// daemon deployment) or a whole topology on loopback (the e2e tests).
type UDPTransport struct {
	deliver DeliverFunc
	book    map[topology.NodeID]*net.UDPAddr

	mu     sync.Mutex
	conns  map[topology.NodeID]*net.UDPConn
	sender *net.UDPConn // for frames whose source is not hosted here
	closed bool
	wg     sync.WaitGroup
}

// NewUDPTransport binds a socket for every hosted node at its
// address-book endpoint and starts the read loops. book must cover
// every node frames will be sent to or from.
func NewUDPTransport(hosted []topology.NodeID, book map[topology.NodeID]string, deliver DeliverFunc) (*UDPTransport, error) {
	t := &UDPTransport{
		deliver: deliver,
		book:    make(map[topology.NodeID]*net.UDPAddr, len(book)),
		conns:   make(map[topology.NodeID]*net.UDPConn, len(hosted)),
	}
	for id, ep := range book {
		ua, err := net.ResolveUDPAddr("udp", ep)
		if err != nil {
			return nil, fmt.Errorf("live: address book entry %d (%s): %w", id, ep, err)
		}
		t.book[id] = ua
	}
	for _, id := range hosted {
		ua, ok := t.book[id]
		if !ok {
			t.Close()
			return nil, fmt.Errorf("live: hosted node %d missing from address book", id)
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("live: bind node %d at %s: %w", id, ua, err)
		}
		t.conns[id] = conn
		if ua.Port == 0 {
			// Ephemeral bind: record the real endpoint so peers hosted
			// in this process can address the node.
			t.book[id] = conn.LocalAddr().(*net.UDPAddr)
		}
		t.wg.Add(1)
		go t.readLoop(id, conn)
	}
	sender, err := net.ListenUDP("udp", nil)
	if err != nil {
		t.Close()
		return nil, err
	}
	t.sender = sender
	return t, nil
}

// LocalAddr reports the bound endpoint of a hosted node's socket
// (useful when the book used port 0).
func (t *UDPTransport) LocalAddr(id topology.NodeID) net.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[id]; ok {
		return c.LocalAddr()
	}
	return nil
}

func (t *UDPTransport) readLoop(id topology.NodeID, conn *net.UDPConn) {
	defer t.wg.Done()
	buf := make([]byte, maxFrame)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		t.deliver(id, frame)
	}
}

// Send implements Transport.
func (t *UDPTransport) Send(from, to topology.NodeID, frame []byte) error {
	dst, ok := t.book[to]
	if !ok {
		return fmt.Errorf("live: node %d not in address book", to)
	}
	t.mu.Lock()
	conn := t.conns[from]
	if conn == nil {
		conn = t.sender
	}
	closed := t.closed
	t.mu.Unlock()
	if closed || conn == nil {
		return fmt.Errorf("live: send on closed transport")
	}
	_, err := conn.WriteToUDP(frame, dst)
	return err
}

// Close shuts every socket and waits for the read loops.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*net.UDPConn, 0, len(t.conns)+1)
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	if t.sender != nil {
		conns = append(conns, t.sender)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
