package live

import (
	"fmt"
	"sync"
	"time"

	"hbh/internal/clock"
	"hbh/internal/eventsim"
	"hbh/internal/netsim"
	"hbh/internal/obs"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// Mode selects how the runtime executes.
type Mode int

const (
	// SimMode runs every node inside one shared discrete-event
	// simulator: single-threaded, virtual time, deterministic. The
	// transport still frames and unmarshals every hop, so the wire
	// path is exercised, but execution is bit-reproducible — this is
	// the mode the equivalence tests compare against netsim.
	SimMode Mode = iota
	// RealMode runs one goroutine per hosted node against the wall
	// clock: mailbox-serialised engines, concurrent transport
	// delivery, time.Timer-backed soft state.
	RealMode
)

// Config parameterises a runtime.
type Config struct {
	Graph   *topology.Graph
	Routing unicast.Router

	// Sim selects SimMode when non-nil: all nodes share this
	// simulator as their clock and event loop.
	Sim *eventsim.Sim

	// Unit is RealMode's wall duration of one virtual time unit
	// (default 1ms). Protocol constants are in units, so this knob
	// scales the whole control plane's real-time speed.
	Unit time.Duration

	// Hosted lists the nodes this runtime instantiates engines and
	// mailboxes for. nil hosts the whole graph (in-process cluster);
	// a daemon hosts one router plus its attached hosts.
	Hosted []topology.NodeID

	// HopLimit is the per-packet hop budget (default
	// netsim.DefaultHopLimit).
	HopLimit int
}

// Stats counts runtime-level packet events, mirroring the netsim
// counters the experiments read. Snapshot via Runtime.Stats.
type Stats struct {
	Transmissions int
	DataCopies    int
	Delivered     int
	DataDelivered int
	Consumed      int
	DataConsumed  int
	HopLimitDrops int
	NoRouteDrops  int
	LinkDownDrops int
	NodeDownDrops int
	CodecDrops    int
}

// Runtime hosts live protocol engines over a transport. Construct
// with New, attach engines to rt.Node(id) (same Attach* calls as
// netsim), install a transport (or let Start default to in-process),
// then Start. In RealMode all post-Start engine access must go
// through Do or Quiesce.
type Runtime struct {
	mode     Mode
	g        *topology.Graph
	routing  unicast.Router
	sim      *eventsim.Sim
	unit     time.Duration
	start    time.Time
	wall     *clock.Real // RealMode ambient clock (Now for stamping)
	hopLimit int

	nodes  []*Node // by NodeID; nil when not hosted
	trans  Transport
	hosted []topology.NodeID

	// worldMu is RealMode's stop-the-world barrier: every mailbox
	// dispatch runs under RLock, Quiesce takes the write lock.
	worldMu sync.RWMutex

	// emitMu serialises the shared observability surface (observer,
	// taps, stats) across node goroutines.
	emitMu  sync.Mutex
	obsv    *obs.Observer
	taps    []netsim.Tap
	delTaps []netsim.DeliveryTap
	stats   Stats

	// faultMu guards the runtime fault overlay. The shared graph is
	// frozen and never mutated here — faults are a runtime concept so
	// concurrent toggles stay race-free.
	faultMu  sync.RWMutex
	nodeDown map[topology.NodeID]bool
	linkDown map[[2]topology.NodeID]bool

	started bool
	stopped bool
}

// New builds a runtime over a frozen graph and its routing tables.
func New(cfg Config) *Runtime {
	if cfg.Routing.Graph() != cfg.Graph {
		panic("live: routing tables computed for a different graph")
	}
	rt := &Runtime{
		g:        cfg.Graph,
		routing:  cfg.Routing,
		sim:      cfg.Sim,
		unit:     cfg.Unit,
		hopLimit: cfg.HopLimit,
		nodeDown: make(map[topology.NodeID]bool),
		linkDown: make(map[[2]topology.NodeID]bool),
	}
	if rt.hopLimit == 0 {
		rt.hopLimit = netsim.DefaultHopLimit
	}
	if rt.sim != nil {
		rt.mode = SimMode
	} else {
		rt.mode = RealMode
		if rt.unit <= 0 {
			rt.unit = time.Millisecond
		}
		rt.start = time.Now()
		rt.wall = clock.NewRealAt(rt.start, rt.unit, nil)
	}
	hosted := cfg.Hosted
	if hosted == nil {
		for _, nd := range cfg.Graph.Nodes() {
			hosted = append(hosted, nd.ID)
		}
	}
	rt.hosted = hosted
	rt.nodes = make([]*Node, cfg.Graph.NumNodes())
	for _, id := range hosted {
		nd := cfg.Graph.Node(id)
		ln := &Node{rt: rt, id: id, addr: nd.Addr, name: nd.Name}
		if rt.mode == SimMode {
			ln.clk = clock.Sim(rt.sim)
		} else {
			ln.mbox = newMailbox()
			ln.clk = clock.NewRealAt(rt.start, rt.unit, ln.mbox.enqueue)
		}
		rt.nodes[id] = ln
	}
	return rt
}

// Mode reports the execution mode.
func (rt *Runtime) Mode() Mode { return rt.mode }

// Node returns the hosted node, panicking on a non-hosted ID.
func (rt *Runtime) Node(id topology.NodeID) *Node {
	n := rt.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("live: node %d not hosted by this runtime", id))
	}
	return n
}

// Hosted returns the hosted node IDs.
func (rt *Runtime) Hosted() []topology.NodeID { return rt.hosted }

// SetTransport installs the transport. Must happen before Start.
func (rt *Runtime) SetTransport(t Transport) {
	if rt.started {
		panic("live: SetTransport after Start")
	}
	rt.trans = t
}

// Transport returns the installed transport.
func (rt *Runtime) Transport() Transport { return rt.trans }

// SetObserver attaches the observability pipeline, rebinding its
// clock to the runtime's. Emission from node goroutines is
// serialised internally.
func (rt *Runtime) SetObserver(o *obs.Observer) {
	rt.obsv = o
	if o != nil {
		o.SetNow(rt.Now)
		// Engine code (receiver spans, protocol annotations) emits into
		// the observer directly from node goroutines; sharing the
		// runtime's emission mutex serialises those paths with the
		// transport events and with telemetry scrapes.
		o.SetEmitLock(&rt.emitMu)
		if lt := o.Latency(); lt != nil {
			// The live runtime feeds delivery delays from frame
			// timestamps (cross-process capable); event pairing would
			// double-count them.
			lt.SetDirect(true)
		}
	}
}

// Observer returns the attached observer, or nil.
func (rt *Runtime) Observer() *obs.Observer { return rt.obsv }

// Topology returns the graph (invariant.Network).
func (rt *Runtime) Topology() *topology.Graph { return rt.g }

// Routing returns the unicast substrate (invariant.Network).
func (rt *Runtime) Routing() unicast.Router { return rt.routing }

// NodeName resolves a node's label (invariant.Network).
func (rt *Runtime) NodeName(id topology.NodeID) string { return rt.g.Node(id).Name }

// Now returns the current time in virtual units (invariant.Network).
func (rt *Runtime) Now() eventsim.Time {
	if rt.mode == SimMode {
		return rt.sim.Now()
	}
	return rt.wall.Now()
}

// stampNow returns the frame-timestamp clock: wall nanoseconds in
// RealMode (comparable across daemons whose wall clocks are roughly
// synchronised), virtual microseconds in SimMode (exact within one
// simulation). Frames carry these stamps so the receiving process can
// compute delivery and hop delays without a shared virtual clock.
func (rt *Runtime) stampNow() int64 {
	if rt.mode == SimMode {
		return int64(rt.sim.Now() * 1e6)
	}
	return time.Now().UnixNano()
}

// stampDelta converts a stamp difference to histogram units: seconds
// in RealMode, virtual units in SimMode.
func (rt *Runtime) stampDelta(from int64) float64 {
	d := rt.stampNow() - from
	if rt.mode == SimMode {
		return float64(d) / 1e6
	}
	return float64(d) / 1e9
}

// ObsLocked runs fn under the emission lock: the consistency boundary
// for reading the observer's registries (counters, histograms,
// convergence state) while node goroutines emit concurrently. The
// daemon's telemetry endpoints scrape through it.
func (rt *Runtime) ObsLocked(fn func()) {
	rt.emitMu.Lock()
	defer rt.emitMu.Unlock()
	fn()
}

// AddTap registers a link tap (invariant.Network). Taps run under the
// runtime's emission lock.
func (rt *Runtime) AddTap(t netsim.Tap) {
	rt.emitMu.Lock()
	rt.taps = append(rt.taps, t)
	rt.emitMu.Unlock()
}

// AddDeliveryTap registers a delivery tap (invariant.Network).
func (rt *Runtime) AddDeliveryTap(t netsim.DeliveryTap) {
	rt.emitMu.Lock()
	rt.delTaps = append(rt.delTaps, t)
	rt.emitMu.Unlock()
}

// Stats snapshots the runtime counters.
func (rt *Runtime) Stats() Stats {
	rt.emitMu.Lock()
	defer rt.emitMu.Unlock()
	return rt.stats
}

// SetNodeUp marks a hosted-or-remote node up or down in the runtime
// fault overlay (safe to call concurrently).
func (rt *Runtime) SetNodeUp(id topology.NodeID, up bool) {
	rt.faultMu.Lock()
	if up {
		delete(rt.nodeDown, id)
	} else {
		rt.nodeDown[id] = true
	}
	rt.faultMu.Unlock()
}

// SetLinkUp enables or disables the directed link pair (both
// directions) in the runtime fault overlay.
func (rt *Runtime) SetLinkUp(a, b topology.NodeID, up bool) {
	rt.faultMu.Lock()
	if up {
		delete(rt.linkDown, [2]topology.NodeID{a, b})
		delete(rt.linkDown, [2]topology.NodeID{b, a})
	} else {
		rt.linkDown[[2]topology.NodeID{a, b}] = true
		rt.linkDown[[2]topology.NodeID{b, a}] = true
	}
	rt.faultMu.Unlock()
}

func (rt *Runtime) isNodeDown(id topology.NodeID) bool {
	rt.faultMu.RLock()
	down := rt.nodeDown[id]
	rt.faultMu.RUnlock()
	return down
}

func (rt *Runtime) isLinkUp(a, b topology.NodeID) bool {
	if !rt.g.LinkEnabled(a, b) {
		return false
	}
	rt.faultMu.RLock()
	down := rt.linkDown[[2]topology.NodeID{a, b}]
	rt.faultMu.RUnlock()
	return !down
}

// Start launches the runtime: defaults the transport to in-process
// delivery and, in RealMode, spawns the node goroutines.
func (rt *Runtime) Start() {
	if rt.started {
		panic("live: Start twice")
	}
	rt.started = true
	if rt.trans == nil {
		buffer := 0
		if rt.mode == RealMode {
			buffer = 1024
		}
		rt.trans = NewChanTransport(rt.HandleFrame, buffer)
	}
	if rt.mode == RealMode {
		for _, id := range rt.hosted {
			rt.nodes[id].mbox.start(rt)
		}
	}
}

// Stop shuts the runtime down: transport first (no new arrivals),
// then the node goroutines drain and exit.
func (rt *Runtime) Stop() {
	if !rt.started || rt.stopped {
		return
	}
	rt.stopped = true
	if rt.trans != nil {
		rt.trans.Close()
	}
	if rt.mode == RealMode {
		for _, id := range rt.hosted {
			rt.nodes[id].mbox.close()
		}
		for _, id := range rt.hosted {
			rt.nodes[id].mbox.wait()
		}
	}
}

// Do runs fn on node id's goroutine and waits for it. This is the
// only safe way to touch an engine after Start in RealMode (join a
// receiver, read a table). In SimMode fn runs inline. Calling Do from
// a node goroutine deadlocks — engines must not use it.
func (rt *Runtime) Do(id topology.NodeID, fn func()) {
	nd := rt.Node(id)
	if rt.mode == SimMode || !rt.started {
		fn()
		return
	}
	done := make(chan struct{})
	nd.mbox.enqueue(func() {
		fn()
		close(done)
	})
	<-done
}

// Quiesce stops the world — every node goroutine parked between
// dispatches — and runs fn. Structural invariant checks use it to see
// a consistent global cut. In SimMode fn just runs inline.
func (rt *Runtime) Quiesce(fn func()) {
	if rt.mode == SimMode || !rt.started {
		fn()
		return
	}
	rt.worldMu.Lock()
	defer rt.worldMu.Unlock()
	fn()
}

// HandleFrame ingests a frame addressed to hosted node to. Transports
// call it from their receive path; it charges the link cost as
// arrival delay on the destination's clock, exactly as netsim charges
// cost on the wire.
func (rt *Runtime) HandleFrame(to topology.NodeID, frame []byte) {
	nd := rt.nodes[to]
	if nd == nil {
		return // not hosted here; a misrouted or stale frame
	}
	fm, msg, err := decodeFrame(frame)
	if err != nil {
		rt.emitMu.Lock()
		rt.stats.CodecDrops++
		rt.emitMu.Unlock()
		return
	}
	fm.wire = true
	cost := rt.g.Cost(fm.from, to)
	nd.clk.After(eventsim.Time(cost), func() {
		rt.arrive(nd, fm, msg)
	})
}

// emitMsg emits one packet-level event under the emission lock,
// stamped with the acting node's ambient causal context, and returns
// the event's step (0 with no observer) so callers can chain a
// packet's in-flight causal pair to it — the mirror of netsim's
// emitMsg.
func (rt *Runtime) emitMsg(kind obs.Kind, cause obs.Cause, nd *Node, peer topology.NodeID, msg packet.Message) obs.StepID {
	if rt.obsv == nil {
		return 0
	}
	ev := obs.Event{Kind: kind, Cause: cause, Msg: msg}
	ev.Node = nd.addr
	ev.NodeName = nd.name
	if peer != topology.None {
		p := rt.g.Node(peer)
		ev.Peer = p.Addr
		ev.PeerName = p.Name
	}
	ev.Channel = msg.Hdr().Channel
	if d, ok := msg.(*packet.Data); ok {
		ev.Seq = d.Seq
	}
	ev.Episode = nd.cur.Episode
	ev.ParentStep = nd.cur.Step
	ev.Step = rt.obsv.NewStep()
	rt.obsv.EmitLocked(ev)
	return ev.Step
}

// arrive processes msg at nd: handlers first, then local delivery or
// onward forwarding — the same decision ladder as netsim.arrive. The
// frame's causal pair becomes the node's ambient context for the
// dispatch (netsim's envelope.Fire does the same), so everything the
// packet causes here chains to the hop that delivered it — even when
// that hop ran in another process.
func (rt *Runtime) arrive(nd *Node, fm frameMeta, msg packet.Message) {
	prev := nd.cur
	nd.cur = fm.cause
	defer func() { nd.cur = prev }()
	if fm.wire && fm.hopAt != 0 && rt.obsv != nil {
		rt.emitMu.Lock()
		if lt := rt.obsv.Latency(); lt != nil {
			lt.ObserveHop(rt.stampDelta(fm.hopAt))
		}
		rt.emitMu.Unlock()
	}
	if rt.isNodeDown(nd.id) {
		rt.emitMu.Lock()
		rt.stats.NodeDownDrops++
		rt.emitMu.Unlock()
		rt.withEmit(func() { rt.emitMsg(obs.KindDrop, obs.CauseNodeDown, nd, topology.None, msg) })
		return
	}
	for _, h := range nd.handlers {
		if h.Handle(nd, msg) == netsim.Consumed {
			rt.emitMu.Lock()
			rt.stats.Consumed++
			if _, isData := msg.(*packet.Data); isData {
				rt.stats.DataConsumed++
				rt.observeDeliveryLocked(fm)
			}
			if rt.obsv != nil {
				rt.emitMsg(obs.KindConsume, obs.CauseNone, nd, topology.None, msg)
			}
			for _, t := range rt.delTaps {
				t(nd.id, msg, true)
			}
			rt.emitMu.Unlock()
			return
		}
	}
	hdr := msg.Hdr()
	if hdr.Dst == nd.addr {
		rt.emitMu.Lock()
		rt.stats.Delivered++
		if _, isData := msg.(*packet.Data); isData {
			rt.stats.DataDelivered++
			rt.observeDeliveryLocked(fm)
		}
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDeliver, obs.CauseNone, nd, topology.None, msg)
		}
		rt.emitMu.Unlock()
		if nd.deliver != nil {
			nd.deliver(nd, msg)
		}
		rt.emitMu.Lock()
		for _, t := range rt.delTaps {
			t(nd.id, msg, false)
		}
		rt.emitMu.Unlock()
		return
	}
	if !hdr.Dst.IsUnicast() {
		rt.emitMu.Lock()
		rt.stats.NoRouteDrops++
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDrop, obs.CauseUnclaimedMulticast, nd, topology.None, msg)
		}
		rt.emitMu.Unlock()
		return
	}
	rt.forward(nd, fm, msg)
}

// observeDeliveryLocked samples the end-to-end delivery delay of a
// data packet from its frame origination stamp. Caller holds emitMu.
func (rt *Runtime) observeDeliveryLocked(fm frameMeta) {
	if fm.origAt == 0 || rt.obsv == nil {
		return
	}
	if lt := rt.obsv.Latency(); lt != nil {
		lt.ObserveDelivery(rt.stampDelta(fm.origAt))
	}
}

// withEmit runs fn under the emission lock when an observer is attached.
func (rt *Runtime) withEmit(fn func()) {
	if rt.obsv == nil {
		return
	}
	rt.emitMu.Lock()
	fn()
	rt.emitMu.Unlock()
}

// forward routes msg one hop toward its unicast destination.
func (rt *Runtime) forward(nd *Node, fm frameMeta, msg packet.Message) {
	dst, ok := rt.g.ByAddr(msg.Hdr().Dst)
	if !ok || !rt.routing.Reachable(nd.id, dst) {
		rt.emitMu.Lock()
		rt.stats.NoRouteDrops++
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDrop, obs.CauseNoRoute, nd, topology.None, msg)
		}
		rt.emitMu.Unlock()
		return
	}
	next := rt.routing.NextHop(nd.id, dst)
	rt.transmit(nd, next, fm, msg)
}

// transmit frames msg and hands it to the transport, charging one
// unit of hop budget. The packet is marshalled fresh every hop: the
// live runtime always exercises the real wire codec. The outgoing
// frame carries the packet's causal pair — parented at this forward
// event, exactly as netsim's emitEnv advances the envelope's step —
// and a fresh last-hop timestamp.
func (rt *Runtime) transmit(nd *Node, to topology.NodeID, fm frameMeta, msg packet.Message) {
	if fm.ttl <= 0 {
		rt.emitMu.Lock()
		rt.stats.HopLimitDrops++
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDrop, obs.CauseHopLimit, nd, topology.None, msg)
		}
		rt.emitMu.Unlock()
		return
	}
	fm.ttl--
	if !rt.isLinkUp(nd.id, to) {
		rt.emitMu.Lock()
		rt.stats.LinkDownDrops++
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDrop, obs.CauseLinkDown, nd, to, msg)
		}
		rt.emitMu.Unlock()
		return
	}
	if rt.g.Cost(nd.id, to) == 0 {
		panic(fmt.Sprintf("live: transmit over missing link %d->%d", nd.id, to))
	}
	wire, err := packet.Marshal(msg)
	if err != nil {
		panic(fmt.Sprintf("live: marshal on %d->%d: %v", nd.id, to, err))
	}
	rt.emitMu.Lock()
	rt.stats.Transmissions++
	if _, isData := msg.(*packet.Data); isData {
		rt.stats.DataCopies++
	}
	for _, tap := range rt.taps {
		tap(nd.id, to, msg)
	}
	if rt.obsv != nil {
		// Emit under the frame's causal context (netsim's emitEnv swap)
		// and advance the frame's step to the forward event, so the next
		// hop — possibly in another process — chains to it.
		saved := nd.cur
		nd.cur = fm.cause
		fm.cause.Step = rt.emitMsg(obs.KindForward, obs.CauseNone, nd, to, msg)
		nd.cur = saved
	}
	rt.emitMu.Unlock()
	fm.from = nd.id
	fm.hopAt = rt.stampNow()
	rt.trans.Send(nd.id, to, encodeFrame(fm, wire))
}

// mailbox is an unbounded FIFO work queue with one consumer
// goroutine: a router's serialised execution context. Unbounded on
// purpose — node A's dispatch may synchronously enqueue onto node B
// and vice versa, so any bounded queue could deadlock the pair.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []func()
	closed bool
	done   chan struct{}
}

func newMailbox() *mailbox {
	m := &mailbox{done: make(chan struct{})}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) enqueue(fn func()) {
	m.mu.Lock()
	if !m.closed {
		m.q = append(m.q, fn)
	}
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *mailbox) start(rt *Runtime) {
	go func() {
		defer close(m.done)
		for {
			m.mu.Lock()
			for len(m.q) == 0 && !m.closed {
				m.cond.Wait()
			}
			if len(m.q) == 0 && m.closed {
				m.mu.Unlock()
				return
			}
			fn := m.q[0]
			m.q = m.q[1:]
			m.mu.Unlock()

			rt.worldMu.RLock()
			fn()
			rt.worldMu.RUnlock()
		}
	}()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) wait() { <-m.done }
