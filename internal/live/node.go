package live

import (
	"fmt"

	"hbh/internal/addr"
	"hbh/internal/clock"
	"hbh/internal/netsim"
	"hbh/internal/obs"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// Node is the live implementation of netsim.ProtoNode: the locus a
// protocol engine runs at inside a Runtime. In RealMode every method
// that touches engine state must execute on the node's goroutine
// (from a handler, a timer callback, or Runtime.Do); the causal
// context is node-local for the same reason.
type Node struct {
	rt   *Runtime
	id   topology.NodeID
	addr addr.Addr
	name string
	clk  clock.Clock
	mbox *mailbox // RealMode only

	handlers []netsim.Handler
	deliver  netsim.DeliverFunc
	cur      obs.Causal
}

// ID implements netsim.ProtoNode.
func (nd *Node) ID() topology.NodeID { return nd.id }

// Addr implements netsim.ProtoNode.
func (nd *Node) Addr() addr.Addr { return nd.addr }

// Name implements netsim.ProtoNode.
func (nd *Node) Name() string { return nd.name }

// Clock implements netsim.ProtoNode.
func (nd *Node) Clock() clock.Clock { return nd.clk }

// Topology implements netsim.ProtoNode.
func (nd *Node) Topology() *topology.Graph { return nd.rt.g }

// Routing implements netsim.ProtoNode.
func (nd *Node) Routing() unicast.Router { return nd.rt.routing }

// AddHandler implements netsim.ProtoNode.
func (nd *Node) AddHandler(h netsim.Handler) { nd.handlers = append(nd.handlers, h) }

// SetDeliver implements netsim.ProtoNode.
func (nd *Node) SetDeliver(d netsim.DeliverFunc) { nd.deliver = d }

// Observer implements netsim.ProtoNode.
func (nd *Node) Observer() *obs.Observer { return nd.rt.obsv }

// Observing implements netsim.ProtoNode.
func (nd *Node) Observing() bool { return nd.rt.obsv != nil }

// EmitProto implements netsim.ProtoNode: one protocol-level event,
// stamped with this node's ambient causal context, serialised across
// node goroutines by the runtime's emission lock.
func (nd *Node) EmitProto(kind obs.Kind, ch addr.Channel, peer addr.Addr, seq uint32, detail string) obs.Causal {
	o := nd.rt.obsv
	if o == nil {
		return obs.Causal{}
	}
	ev := obs.Event{
		Kind: kind, Node: nd.addr, NodeName: nd.name,
		Channel: ch, Peer: peer, Seq: seq, Detail: detail,
	}
	if peer != addr.Unspecified {
		if id, ok := nd.rt.g.ByAddr(peer); ok {
			ev.PeerName = nd.rt.g.Node(id).Name
		}
	}
	nd.rt.emitMu.Lock()
	ev.Episode = nd.cur.Episode
	ev.ParentStep = nd.cur.Step
	ev.Step = o.NewStep()
	o.EmitLocked(ev)
	nd.rt.emitMu.Unlock()
	return obs.Causal{Episode: ev.Episode, Step: ev.Step}
}

// CausalContext implements netsim.ProtoNode.
func (nd *Node) CausalContext() obs.Causal { return nd.cur }

// SetCausalContext implements netsim.ProtoNode.
func (nd *Node) SetCausalContext(c obs.Causal) { nd.cur = c }

// RootEpisode implements netsim.ProtoNode: roots a fresh causal
// episode when none is active, returning the previous context.
func (nd *Node) RootEpisode() obs.Causal {
	prev := nd.cur
	if nd.rt.obsv != nil && prev.Episode == 0 {
		nd.rt.emitMu.Lock()
		nd.cur = obs.Causal{Episode: nd.rt.obsv.NewEpisode()}
		nd.rt.emitMu.Unlock()
	}
	return prev
}

// StampCausal implements netsim.ProtoNode.
func (nd *Node) StampCausal(ev *obs.Event) {
	o := nd.rt.obsv
	if o == nil {
		return
	}
	nd.rt.emitMu.Lock()
	ev.Episode = nd.cur.Episode
	ev.ParentStep = nd.cur.Step
	ev.Step = o.NewStep()
	nd.cur.Step = ev.Step
	nd.rt.emitMu.Unlock()
}

// SendUnicast implements netsim.ProtoNode: originate msg here and
// route it hop by hop toward msg.Hdr().Dst. Self-addressed packets
// are re-processed in a fresh dispatch, as in netsim.
func (nd *Node) SendUnicast(msg packet.Message) {
	if nd.rt.obsv != nil && nd.cur.Episode == 0 {
		nd.rt.emitMu.Lock()
		nd.cur = obs.Causal{Episode: nd.rt.obsv.NewEpisode()}
		nd.rt.emitMu.Unlock()
		nd.sendUnicast(msg)
		nd.cur = obs.Causal{}
		return
	}
	nd.sendUnicast(msg)
}

func (nd *Node) sendUnicast(msg packet.Message) {
	rt := nd.rt
	h := msg.Hdr()
	if rt.isNodeDown(nd.id) {
		rt.emitMu.Lock()
		rt.stats.NodeDownDrops++
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDrop, obs.CauseNodeDown, nd, topology.None, msg)
		}
		rt.emitMu.Unlock()
		return
	}
	if !h.Dst.IsUnicast() {
		rt.emitMu.Lock()
		rt.stats.NoRouteDrops++
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDrop, obs.CauseNonUnicast, nd, topology.None, msg)
		}
		rt.emitMu.Unlock()
		return
	}
	var sendStep obs.StepID
	rt.withEmit(func() { sendStep = rt.emitMsg(obs.KindSend, obs.CauseNone, nd, topology.None, msg) })
	// The frame's in-flight metadata: causal pair parented at the send
	// event (netsim arms its envelopes the same way) and the
	// origination timestamp the delivery-delay histogram measures from.
	fm := frameMeta{
		from: nd.id, ttl: rt.hopLimit,
		cause:  obs.Causal{Episode: nd.cur.Episode, Step: sendStep},
		origAt: rt.stampNow(),
	}
	dst, ok := rt.g.ByAddr(h.Dst)
	if !ok {
		rt.emitMu.Lock()
		rt.stats.NoRouteDrops++
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDrop, obs.CauseNoRoute, nd, topology.None, msg)
		}
		rt.emitMu.Unlock()
		return
	}
	if dst == nd.id {
		// Local: re-process in a fresh dispatch for causal order.
		nd.clk.After(0, func() { rt.arrive(nd, fm, msg) })
		return
	}
	rt.forward(nd, fm, msg)
}

// SendDirect implements netsim.ProtoNode: push msg one hop to the
// adjacent node to, bypassing unicast routing.
func (nd *Node) SendDirect(to topology.NodeID, msg packet.Message) {
	if nd.rt.obsv != nil && nd.cur.Episode == 0 {
		nd.rt.emitMu.Lock()
		nd.cur = obs.Causal{Episode: nd.rt.obsv.NewEpisode()}
		nd.rt.emitMu.Unlock()
		nd.sendDirect(to, msg)
		nd.cur = obs.Causal{}
		return
	}
	nd.sendDirect(to, msg)
}

func (nd *Node) sendDirect(to topology.NodeID, msg packet.Message) {
	rt := nd.rt
	if !rt.g.HasLink(nd.id, to) {
		panic(fmt.Sprintf("live: SendDirect %s -> %s without a link",
			nd.name, rt.g.Node(to).Name))
	}
	if rt.isNodeDown(nd.id) {
		rt.emitMu.Lock()
		rt.stats.NodeDownDrops++
		if rt.obsv != nil {
			rt.emitMsg(obs.KindDrop, obs.CauseNodeDown, nd, topology.None, msg)
		}
		rt.emitMu.Unlock()
		return
	}
	var sendStep obs.StepID
	rt.withEmit(func() { sendStep = rt.emitMsg(obs.KindSendDirect, obs.CauseNone, nd, to, msg) })
	fm := frameMeta{
		from: nd.id, ttl: rt.hopLimit,
		cause:  obs.Causal{Episode: nd.cur.Episode, Step: sendStep},
		origAt: rt.stampNow(),
	}
	rt.transmit(nd, to, fm, msg)
}
