package live

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"hbh/internal/addr"
	"hbh/internal/core"
	"hbh/internal/obs"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

func TestFrameRoundTrip(t *testing.T) {
	msg := &packet.Data{
		Header: packet.Header{
			Type: packet.TypeData,
			Channel: addr.Channel{
				S: addr.ReceiverAddr(0), G: addr.GroupAddr(0),
			},
			Dst: addr.RouterAddr(3),
		},
		Seq:     42,
		Payload: []byte("payload"),
	}
	wire, err := packet.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	meta := frameMeta{
		from: 7, ttl: 31,
		cause:  obs.Causal{Episode: 1<<40 + 3, Step: 1<<40 + 9},
		origAt: 1_700_000_000_123_456_789, hopAt: 1_700_000_000_123_999_999,
	}
	f := encodeFrame(meta, wire)
	fm, got, err := decodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if fm.from != 7 || fm.ttl != 31 {
		t.Errorf("frame header = (%d, %d), want (7, 31)", fm.from, fm.ttl)
	}
	if fm.cause != meta.cause {
		t.Errorf("causal stamp = %+v, want %+v", fm.cause, meta.cause)
	}
	if fm.origAt != meta.origAt || fm.hopAt != meta.hopAt {
		t.Errorf("timestamps = (%d, %d), want (%d, %d)", fm.origAt, fm.hopAt, meta.origAt, meta.hopAt)
	}
	gw, err := packet.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gw, wire) {
		t.Error("packet did not survive the frame round trip")
	}
	if _, _, err := decodeFrame(f[:3]); err == nil {
		t.Error("short frame decoded without error")
	}
	if _, _, err := decodeFrame(append(f[:frameOverhead:frameOverhead], 0xff)); err == nil {
		t.Error("garbage packet decoded without error")
	}
}

// waitUntil polls cond (safely, via fn the caller makes thread-safe)
// until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// realModeFig3 runs the Figure-3 scenario under the wall clock on the
// given transport (nil = default in-process channel transport) and
// asserts both receivers get every packet.
func realModeFig3(t *testing.T, mkTrans func(rt *Runtime) Transport) {
	t.Helper()
	sc := topology.Fig3Scenario()
	g := sc.Graph
	rt := New(Config{Graph: g, Routing: unicast.Compute(g), Unit: 200 * time.Microsecond})
	cfg := core.DefaultConfig()
	var routers []*core.Router
	for _, r := range g.Routers() {
		routers = append(routers, core.AttachRouter(rt.Node(r), cfg))
	}
	src := core.AttachSource(rt.Node(sc.Source), addr.GroupAddr(0), cfg)
	rcv1 := core.AttachReceiver(rt.Node(sc.R1), src.Channel(), cfg)
	rcv2 := core.AttachReceiver(rt.Node(sc.R2), src.Channel(), cfg)
	if mkTrans != nil {
		rt.SetTransport(mkTrans(rt))
	}
	rt.Start()
	defer rt.Stop()

	rt.Do(sc.R1, rcv1.Join)
	rt.Do(sc.R2, rcv2.Join)

	// Wait until both receivers are on the tree: each has a delivery
	// path, observable as a successful probe send.
	const sends = 5
	delivered := func() bool {
		n1, n2 := 0, 0
		rt.Do(sc.R1, func() { n1 = len(rcv1.Deliveries) })
		rt.Do(sc.R2, func() { n2 = len(rcv2.Deliveries) })
		return n1 >= sends && n2 >= sends
	}
	// Send data periodically until both receivers have heard enough;
	// early packets may race the join propagation, so keep counting
	// distinct sends, not sequence numbers.
	deadline := time.Now().Add(10 * time.Second)
	sent := 0
	for !delivered() {
		if time.Now().After(deadline) {
			t.Fatalf("receivers starved: sent %d, deliveries r1+r2 short", sent)
		}
		rt.Do(sc.Source, func() { src.SendData([]byte("live")) })
		sent++
		time.Sleep(5 * time.Millisecond)
	}
	st := rt.Stats()
	// HBH receivers claim data in their handler, so traffic shows up
	// as consumption, not local delivery.
	if st.DataConsumed == 0 || st.Transmissions == 0 {
		t.Errorf("stats = %+v, want nonzero traffic", st)
	}
}

func TestRealModeFig3ChanTransport(t *testing.T) {
	realModeFig3(t, nil)
}

func TestRealModeFig3UDPLoopback(t *testing.T) {
	realModeFig3(t, func(rt *Runtime) Transport {
		book := make(map[topology.NodeID]string, rt.Topology().NumNodes())
		for id := 0; id < rt.Topology().NumNodes(); id++ {
			book[topology.NodeID(id)] = "127.0.0.1:0"
		}
		tr, err := NewUDPTransport(rt.Hosted(), book, rt.HandleFrame)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	})
}

// TestQuiesceSeesConsistentCut pins that Quiesce really stops the
// world: a counter incremented on many node goroutines never moves
// while a quiesced reader holds the world.
func TestQuiesceSeesConsistentCut(t *testing.T) {
	g := topology.Line(8, false)
	rt := New(Config{Graph: g, Routing: unicast.Compute(g), Unit: 100 * time.Microsecond})
	rt.Start()
	defer rt.Stop()
	stop := make(chan struct{})
	bump := make(chan struct{}, 64)
	var n atomic.Int64
	var tick func(id topology.NodeID)
	tick = func(id topology.NodeID) {
		select {
		case <-stop:
			return
		default:
		}
		n.Add(1)
		select {
		case bump <- struct{}{}:
		default:
		}
		rt.Node(id).Clock().After(0.1, func() { tick(id) })
	}
	for id := 0; id < g.NumNodes(); id++ {
		id := topology.NodeID(id)
		rt.Do(id, func() { tick(id) })
	}
	<-bump
	for i := 0; i < 20; i++ {
		rt.Quiesce(func() {
			before := n.Load()
			time.Sleep(500 * time.Microsecond)
			if n.Load() != before {
				t.Fatal("counter moved during a quiesced cut")
			}
		})
	}
	close(stop)
}
