package live

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbh/internal/addr"
	"hbh/internal/core"
	"hbh/internal/eventsim"
	"hbh/internal/netsim"
	"hbh/internal/reunite"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// These tests pin the central claim of the live runtime: executed
// under the simulated clock and the in-process transport, the
// unmodified protocol engines produce byte-identical protocol tables
// and delivery sets to the netsim path, even though every packet now
// crosses the real wire codec and the transport framing. The dumps
// are additionally pinned as goldens alongside results/quick/ so a
// semantic drift in either execution path fails loudly.

var equivGroup = addr.GroupAddr(0)

// equivScript is the deterministic driver both paths execute: join
// times, data send times and the settle horizon, all in virtual units.
type equivScript struct {
	joins   map[topology.NodeID]eventsim.Time // receiver host -> join time
	sends   []eventsim.Time
	horizon eventsim.Time
}

// dumpHBH renders the final protocol state of an HBH run.
func dumpHBH(g *topology.Graph, routers map[topology.NodeID]*core.Router,
	src *core.Source, receivers map[topology.NodeID]*core.Receiver, ch addr.Channel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "channel %v\n", ch)
	fmt.Fprintf(&b, "source mft=%s\n", src.MFT().String())
	for _, id := range g.Routers() {
		r := routers[id]
		mft, mct := "-", "-"
		if t := r.MFTFor(ch); t != nil && t.Len() > 0 {
			var e []string
			for _, en := range t.Entries() {
				s := en.Node.String()
				if en.Marked {
					s += "(m)"
				}
				if en.ServedBy != addr.Unspecified {
					s += "<-" + en.ServedBy.String()
				}
				e = append(e, s)
			}
			mft = "[" + strings.Join(e, " ") + "]"
		}
		if c := r.MCTFor(ch); c != nil {
			mct = c.Node.String()
		}
		fmt.Fprintf(&b, "router %s mft=%s mct=%s\n", g.Node(id).Name, mft, mct)
	}
	for _, id := range hostOrder(g, receivers) {
		r := receivers[id]
		var ds []string
		for _, d := range r.Deliveries {
			ds = append(ds, fmt.Sprintf("%d@%g", d.Seq, float64(d.At)))
		}
		fmt.Fprintf(&b, "receiver %s dups=%d deliveries=[%s]\n",
			g.Node(id).Name, r.DupCount, strings.Join(ds, " "))
	}
	return b.String()
}

func hostOrder(g *topology.Graph, m map[topology.NodeID]*core.Receiver) []topology.NodeID {
	var ids []topology.NodeID
	for _, h := range g.Hosts() {
		if _, ok := m[h]; ok {
			ids = append(ids, h)
		}
	}
	return ids
}

// runHBHNetsim executes the script on the reference netsim path.
func runHBHNetsim(t *testing.T, build func() (*topology.Graph, topology.NodeID), script equivScript) string {
	t.Helper()
	g, srcHost := build()
	routing := unicast.Compute(g)
	sim := eventsim.New()
	net := netsim.New(sim, g, routing)
	cfg := core.DefaultConfig()
	routers := make(map[topology.NodeID]*core.Router)
	for _, r := range g.Routers() {
		routers[r] = core.AttachRouter(net.Node(r), cfg)
	}
	src := core.AttachSource(net.Node(srcHost), equivGroup, cfg)
	receivers := make(map[topology.NodeID]*core.Receiver)
	for h, at := range script.joins {
		rcv := core.AttachReceiver(net.Node(h), src.Channel(), cfg)
		receivers[h] = rcv
		sim.At(at, rcv.Join)
	}
	for _, at := range script.sends {
		sim.At(at, func() { src.SendData([]byte("equiv")) })
	}
	if err := sim.Run(script.horizon); err != nil {
		t.Fatalf("netsim path: %v", err)
	}
	return dumpHBH(g, routers, src, receivers, src.Channel())
}

// runHBHLive executes the same script on the live runtime under the
// simulated clock + in-process synchronous transport.
func runHBHLive(t *testing.T, build func() (*topology.Graph, topology.NodeID), script equivScript) string {
	t.Helper()
	g, srcHost := build()
	routing := unicast.Compute(g)
	sim := eventsim.New()
	rt := New(Config{Graph: g, Routing: routing, Sim: sim})
	cfg := core.DefaultConfig()
	routers := make(map[topology.NodeID]*core.Router)
	for _, r := range g.Routers() {
		routers[r] = core.AttachRouter(rt.Node(r), cfg)
	}
	src := core.AttachSource(rt.Node(srcHost), equivGroup, cfg)
	receivers := make(map[topology.NodeID]*core.Receiver)
	for h, at := range script.joins {
		rcv := core.AttachReceiver(rt.Node(h), src.Channel(), cfg)
		receivers[h] = rcv
		sim.At(at, rcv.Join)
	}
	for _, at := range script.sends {
		sim.At(at, func() { src.SendData([]byte("equiv")) })
	}
	rt.Start()
	defer rt.Stop()
	if err := sim.Run(script.horizon); err != nil {
		t.Fatalf("live path: %v", err)
	}
	return dumpHBH(g, routers, src, receivers, src.Channel())
}

// goldenCompare pins got against results/quick/<name>, regenerating
// under HBH_UPDATE_GOLDEN=1 (matching the cmd e2e suites).
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("..", "..", "results", "quick", name)
	if os.Getenv("HBH_UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s missing (run with HBH_UPDATE_GOLDEN=1): %v", name, err)
	}
	if string(want) != got {
		t.Errorf("golden %s drifted:\n--- want ---\n%s--- got ---\n%s", name, want, got)
	}
}

func fig3Build() (*topology.Graph, topology.NodeID, topology.NodeID, topology.NodeID) {
	sc := topology.Fig3Scenario()
	return sc.Graph, sc.Source, sc.R1, sc.R2
}

func TestEquivalenceHBHFig3(t *testing.T) {
	var r1, r2 topology.NodeID
	build := func() (*topology.Graph, topology.NodeID) {
		g, s, a, b := fig3Build()
		r1, r2 = a, b
		return g, s
	}
	// Resolve receiver IDs once for the script (same on both builds —
	// the scenario constructor is deterministic).
	build()
	script := equivScript{
		joins:   map[topology.NodeID]eventsim.Time{r1: 10, r2: 130},
		sends:   []eventsim.Time{450, 460, 470},
		horizon: 600,
	}
	ref := runHBHNetsim(t, build, script)
	live := runHBHLive(t, build, script)
	if ref != live {
		t.Fatalf("live execution diverged from netsim:\n--- netsim ---\n%s--- live ---\n%s", ref, live)
	}
	goldenCompare(t, "live_equivalence_fig3_hbh.txt", live)
}

func TestEquivalenceHBHISP(t *testing.T) {
	build := func() (*topology.Graph, topology.NodeID) {
		g := topology.ISP()
		hosts := g.Hosts()
		return g, hosts[0]
	}
	g := topology.ISP()
	hosts := g.Hosts()
	script := equivScript{
		joins: map[topology.NodeID]eventsim.Time{
			hosts[3]:  10,
			hosts[7]:  40,
			hosts[11]: 70,
			hosts[5]:  250, // joins after the first fusion cycle
		},
		sends:   []eventsim.Time{500, 510, 520},
		horizon: 700,
	}
	ref := runHBHNetsim(t, build, script)
	live := runHBHLive(t, build, script)
	if ref != live {
		t.Fatalf("live execution diverged from netsim:\n--- netsim ---\n%s--- live ---\n%s", ref, live)
	}
	goldenCompare(t, "live_equivalence_isp_hbh.txt", live)
}

// TestEquivalenceREUNITEFig3 repeats the exercise for the second
// protocol: the runtime is engine-agnostic, so equivalence must hold
// for REUNITE's interception semantics too.
func TestEquivalenceREUNITEFig3(t *testing.T) {
	type world struct {
		g         *topology.Graph
		routers   map[topology.NodeID]*reunite.Router
		src       *reunite.Source
		receivers map[topology.NodeID]*reunite.Receiver
	}
	run := func(liveMode bool) string {
		sc := topology.Fig3Scenario()
		g := sc.Graph
		routing := unicast.Compute(g)
		sim := eventsim.New()
		var node func(topology.NodeID) netsim.ProtoNode
		var rt *Runtime
		if liveMode {
			rt = New(Config{Graph: g, Routing: routing, Sim: sim})
			node = func(id topology.NodeID) netsim.ProtoNode { return rt.Node(id) }
		} else {
			net := netsim.New(sim, g, routing)
			node = func(id topology.NodeID) netsim.ProtoNode { return net.Node(id) }
		}
		w := world{g: g, routers: make(map[topology.NodeID]*reunite.Router),
			receivers: make(map[topology.NodeID]*reunite.Receiver)}
		cfg := reunite.DefaultConfig()
		for _, r := range g.Routers() {
			w.routers[r] = reunite.AttachRouter(node(r), cfg)
		}
		w.src = reunite.AttachSource(node(sc.Source), equivGroup, cfg)
		for h, at := range map[topology.NodeID]eventsim.Time{sc.R1: 10, sc.R2: 130} {
			rcv := reunite.AttachReceiver(node(h), w.src.Channel(), cfg)
			w.receivers[h] = rcv
			sim.At(at, rcv.Join)
		}
		for _, at := range []eventsim.Time{450, 460, 470} {
			sim.At(at, func() { w.src.SendData([]byte("equiv")) })
		}
		if liveMode {
			rt.Start()
			defer rt.Stop()
		}
		if err := sim.Run(600); err != nil {
			t.Fatalf("run: %v", err)
		}
		var b strings.Builder
		for _, id := range g.Routers() {
			mft := "-"
			if tb := w.routers[id].MFTFor(w.src.Channel()); tb != nil {
				mft = tb.String()
			}
			fmt.Fprintf(&b, "router %s mft=%s\n", g.Node(id).Name, mft)
		}
		for _, h := range []topology.NodeID{sc.R1, sc.R2} {
			rcv := w.receivers[h]
			var ds []string
			for seq := uint32(1); seq <= 3; seq++ {
				if at, ok := rcv.DeliveryAt(seq); ok {
					ds = append(ds, fmt.Sprintf("%d@%g(x%d)", seq, float64(at), rcv.DeliveryCount(seq)))
				}
			}
			fmt.Fprintf(&b, "receiver %s deliveries=[%s]\n", g.Node(h).Name, strings.Join(ds, " "))
		}
		return b.String()
	}
	ref := run(false)
	live := run(true)
	if ref != live {
		t.Fatalf("live REUNITE diverged from netsim:\n--- netsim ---\n%s--- live ---\n%s", ref, live)
	}
	goldenCompare(t, "live_equivalence_fig3_reunite.txt", live)
}
