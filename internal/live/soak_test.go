package live

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"hbh/internal/addr"
	"hbh/internal/core"
	"hbh/internal/invariant"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// soakDuration reads the soak budget from HBH_SOAK_MS (the CI race-soak
// job raises it); the default keeps the ordinary test run fast.
func soakDuration() time.Duration {
	if v := os.Getenv("HBH_SOAK_MS"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return 1500 * time.Millisecond
}

// TestSoakConcurrentChurnAndFaults hammers the concurrent runtime:
// 36 router goroutines plus hosts on a power-law graph, a shared
// lazily-computed routing table, two dozen receivers joining and
// leaving from their own goroutines, node and link faults flapping,
// a data pump, and an online structural invariant monitor taking
// stop-the-world cuts throughout. Run under -race this is the
// concurrency proof for the whole engine stack; the CI race-soak job
// runs it with a raised HBH_SOAK_MS budget.
func TestSoakConcurrentChurnAndFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := topology.BarabasiAlbert(topology.BAConfig{Routers: 36, M: 2, Hosts: true}, rng)
	routing := unicast.NewLazy(g, unicast.LazyOptions{})
	rt := New(Config{Graph: g, Routing: routing, Unit: 250 * time.Microsecond})
	cfg := core.DefaultConfig()
	var routers []*core.Router
	for _, r := range g.Routers() {
		routers = append(routers, core.AttachRouter(rt.Node(r), cfg))
	}
	hosts := g.Hosts()
	src := core.AttachSource(rt.Node(hosts[0]), addr.GroupAddr(0), cfg)
	const nReceivers = 24
	receivers := make(map[topology.NodeID]*core.Receiver, nReceivers)
	var rcvHosts []topology.NodeID
	for _, h := range hosts[1 : 1+nReceivers] {
		receivers[h] = core.AttachReceiver(rt.Node(h), src.Channel(), cfg)
		rcvHosts = append(rcvHosts, h)
	}
	// Structural invariants are node-local and must hold at every
	// consistent cut, faults and churn notwithstanding; the richer
	// tree-wide properties are only meaningful at convergence and are
	// pinned by the equivalence tests instead.
	chk := invariant.New(rt, src.Channel(), invariant.Config{Structural: true},
		core.NewAudit(src, routers))

	// Router-to-router links, for fault flapping.
	var links [][2]topology.NodeID
	routerIDs := g.Routers()
	for i, a := range routerIDs {
		for _, b := range routerIDs[i+1:] {
			if g.HasLink(a, b) {
				links = append(links, [2]topology.NodeID{a, b})
			}
		}
	}

	rt.Start()
	defer rt.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Receiver churn: every receiver on its own goroutine, joining and
	// leaving with its own jittered cadence.
	for i, h := range rcvHosts {
		wg.Add(1)
		go func(i int, h topology.NodeID) {
			defer wg.Done()
			rcv := receivers[h]
			lrng := rand.New(rand.NewSource(int64(1000 + i)))
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Duration(2+lrng.Intn(8)) * time.Millisecond):
				}
				rt.Do(h, func() {
					if rcv.Joined() {
						if lrng.Intn(3) == 0 { // stay joined more than not
							rcv.Leave()
						}
					} else {
						rcv.Join()
					}
				})
			}
		}(i, h)
	}

	// Fault flapper: short node and link outages, always healed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		frng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(3+frng.Intn(10)) * time.Millisecond):
			}
			if frng.Intn(2) == 0 && len(links) > 0 {
				l := links[frng.Intn(len(links))]
				rt.SetLinkUp(l[0], l[1], false)
				time.Sleep(time.Duration(1+frng.Intn(4)) * time.Millisecond)
				rt.SetLinkUp(l[0], l[1], true)
			} else {
				id := routerIDs[frng.Intn(len(routerIDs))]
				rt.SetNodeUp(id, false)
				time.Sleep(time.Duration(1+frng.Intn(4)) * time.Millisecond)
				rt.SetNodeUp(id, true)
			}
		}
	}()

	// Data pump on the source's goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(4 * time.Millisecond):
			}
			rt.Do(hosts[0], func() { src.SendData([]byte("soak")) })
		}
	}()

	// Online monitor: stop-the-world structural checks while the storm
	// rages.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			rt.Quiesce(chk.CheckStructural)
		}
	}()

	time.Sleep(soakDuration())
	close(stop)
	wg.Wait()

	// Heal everything, let the soft state settle a couple of refresh
	// cycles, then take a final consistent cut.
	for _, id := range routerIDs {
		rt.SetNodeUp(id, true)
	}
	for _, l := range links {
		rt.SetLinkUp(l[0], l[1], true)
	}
	time.Sleep(250 * time.Millisecond)
	rt.Quiesce(chk.CheckStructural)

	if !chk.Clean() {
		t.Fatalf("structural invariant violations under churn:\n%s", chk.Report())
	}
	st := rt.Stats()
	if st.DataConsumed == 0 || st.Transmissions == 0 {
		t.Errorf("soak moved no traffic: %+v", st)
	}
	var joined int
	for _, h := range rcvHosts {
		rcv := receivers[h]
		rt.Do(h, func() {
			if rcv.Joined() && len(rcv.Deliveries) == 0 {
				// A joined receiver that never heard anything across the
				// whole soak would mean a stuck path, not bad luck.
				t.Errorf("receiver %s joined but received nothing", rt.NodeName(h))
			}
			if rcv.Joined() {
				joined++
			}
		})
	}
	if joined == 0 {
		t.Log("note: no receiver ended the soak joined (allowed, churn is random)")
	}
	ls := routing.Stats()
	if ls.Misses == 0 {
		t.Error("shared lazy routing was never exercised")
	}
	t.Logf("soak: %d joined at end, stats %+v, routing hits=%d misses=%d",
		joined, st, ls.Hits, ls.Misses)
}
