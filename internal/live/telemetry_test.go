package live

import (
	"testing"
	"time"

	"hbh/internal/addr"
	"hbh/internal/core"
	"hbh/internal/obs"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// collectSink retains events; it runs under the runtime's emission
// lock, so reads are safe once the runtime has stopped (or under
// ObsLocked).
type collectSink struct{ events []obs.Event }

func (c *collectSink) Emit(ev obs.Event) {
	// Msg must not be retained past the Emit call; keep the fields the
	// assertions need and classify the packet now.
	if _, isData := ev.Msg.(*packet.Data); !isData {
		ev.Seq = 0
	}
	ev.Msg = nil
	c.events = append(c.events, ev)
}

// TestLiveTelemetryOverUDP runs Figure 3 under the wall clock over
// real UDP loopback with the full telemetry pipeline attached, and
// asserts the observability tentpole's live half: wall-clock latency
// histograms fill from frame timestamps, and the causal (episode,
// step) stamp survives the wire — a data consume at a receiver reports
// the same episode as the origination send at the source, which only
// the frame could have told it.
func TestLiveTelemetryOverUDP(t *testing.T) {
	sc := topology.Fig3Scenario()
	g := sc.Graph
	rt := New(Config{Graph: g, Routing: unicast.Compute(g), Unit: 200 * time.Microsecond})

	o := obs.New(nil)
	lat := o.EnableLatency()
	o.EnableConvergence()
	sink := &collectSink{}
	o.AddSink(sink)
	rt.SetObserver(o)
	if !lat.Direct() {
		t.Fatal("SetObserver did not switch the latency tracker to direct mode")
	}

	cfg := core.DefaultConfig()
	for _, r := range g.Routers() {
		core.AttachRouter(rt.Node(r), cfg)
	}
	src := core.AttachSource(rt.Node(sc.Source), addr.GroupAddr(0), cfg)
	rcv1 := core.AttachReceiver(rt.Node(sc.R1), src.Channel(), cfg)
	rcv2 := core.AttachReceiver(rt.Node(sc.R2), src.Channel(), cfg)

	book := make(map[topology.NodeID]string, g.NumNodes())
	for id := 0; id < g.NumNodes(); id++ {
		book[topology.NodeID(id)] = "127.0.0.1:0"
	}
	tr, err := NewUDPTransport(rt.Hosted(), book, rt.HandleFrame)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetTransport(tr)
	rt.Start()
	defer rt.Stop()

	rt.Do(sc.R1, rcv1.Join)
	rt.Do(sc.R2, rcv2.Join)

	delivered := func() bool {
		n1, n2 := 0, 0
		rt.Do(sc.R1, func() { n1 = len(rcv1.Deliveries) })
		rt.Do(sc.R2, func() { n2 = len(rcv2.Deliveries) })
		return n1 >= 3 && n2 >= 3
	}
	deadline := time.Now().Add(10 * time.Second)
	for !delivered() {
		if time.Now().After(deadline) {
			t.Fatal("receivers starved")
		}
		rt.Do(sc.Source, func() { src.SendData([]byte("live")) })
		time.Sleep(5 * time.Millisecond)
	}

	var delCount, hopCount uint64
	var delMax float64
	rt.ObsLocked(func() {
		delCount, hopCount = lat.Delivery.Count(), lat.Hop.Count()
		delMax = lat.Delivery.Max()
	})
	if delCount == 0 {
		t.Error("no delivery-delay samples from frame timestamps")
	}
	if hopCount == 0 {
		t.Error("no hop-delay samples from frame timestamps")
	}
	if delMax <= 0 || delMax > 10 {
		t.Errorf("delivery delay max %v seconds implausible for loopback", delMax)
	}

	rt.Stop() // quiesce emission before reading the sink
	sendEp := make(map[uint32]obs.EpisodeID)
	for _, ev := range sink.events {
		if ev.Kind == obs.KindSend && ev.Seq != 0 && ev.NodeName == g.Node(sc.Source).Name {
			sendEp[ev.Seq] = ev.Episode
		}
	}
	matched := false
	for _, ev := range sink.events {
		if ev.Kind != obs.KindConsume || ev.Seq == 0 {
			continue
		}
		if ep, ok := sendEp[ev.Seq]; ok && ep != 0 && ev.Episode == ep && ev.NodeName != g.Node(sc.Source).Name {
			matched = true
			break
		}
	}
	if !matched {
		t.Error("no data consume shares its origination's episode: causal stamp lost crossing UDP")
	}
}
