// Package hbh is a from-scratch implementation and evaluation harness
// for the Hop-By-Hop multicast routing protocol (Costa, Fdida, Duarte —
// SIGCOMM 2001), together with everything the paper's evaluation
// needs: a discrete-event network simulator with asymmetric unicast
// routing, the REUNITE recursive-unicast baseline, PIM-SM/PIM-SS-style
// baselines, and the workload generators and sweeps that regenerate
// every figure of the paper.
//
// # The protocol in one paragraph
//
// HBH delivers multicast data over *recursive unicast trees*: packets
// in flight always carry unicast destination addresses, and only the
// branching routers of a channel keep forwarding state, rewriting the
// destination of the copies they emit. Unicast-only routers forward
// multicast data like any other packet, which makes incremental
// deployment possible. The tree is built by three soft-state messages
// — join (receiver -> source), tree (source -> receivers, along
// *forward* shortest paths) and fusion (branching-candidate -> its
// upstream) — so that, unlike REUNITE and the reverse-path trees of
// PIM, HBH connects every member through the true shortest path from
// the source even when unicast routing is asymmetric.
//
// # Package layout
//
// This root package is a thin facade over the implementation packages:
//
//   - internal/core — the HBH protocol engine (the paper's contribution)
//   - internal/reunite — the REUNITE baseline
//   - internal/pim — PIM-SM (shared tree) and PIM-SS (source tree) baselines
//   - internal/netsim, internal/eventsim — the hop-by-hop network simulator
//   - internal/topology, internal/unicast — graphs and Dijkstra routing
//   - internal/packet, internal/addr — wire formats and addressing
//   - internal/mtree, internal/metrics, internal/experiment — measurement
//     and the paper's evaluation harness
//
// # Quick start
//
//	g := hbh.ISPTopology()
//	rng := rand.New(rand.NewSource(1))
//	g.RandomizeCosts(rng, 1, 10)
//	nw := hbh.NewNetwork(g)
//	nw.EnableHBH(hbh.DefaultConfig())
//	src := nw.NewHBHSource(hbh.ISPSourceHost, hbh.Group(0), hbh.DefaultConfig())
//	r := nw.NewHBHReceiver(g.Hosts()[5], src.Channel(), hbh.DefaultConfig())
//	r.Join()
//	nw.RunFor(4000)
//	res := nw.Probe(src.SendData, r)
//	fmt.Println(res)
//
// See the examples/ directory for complete programs and cmd/hbhsim for
// the experiment runner that regenerates the paper's figures.
package hbh
