package hbh_test

// Tests of the public facade: everything a downstream user would touch
// first, exercised through the root package only.

import (
	"math/rand"
	"strings"
	"testing"

	"hbh"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := hbh.ISPTopology()
	g.RandomizeCosts(rand.New(rand.NewSource(1)), 1, 10)
	nw := hbh.NewNetwork(g)
	cfg := hbh.DefaultConfig()
	nw.EnableHBH(cfg)

	src := nw.NewHBHSource(hbh.ISPSourceHost, hbh.Group(0), cfg)
	if !src.Channel().Valid() {
		t.Fatal("invalid channel")
	}
	var members []hbh.Member
	for i, host := range []hbh.NodeID{20, 25, 30} {
		r := nw.NewHBHReceiver(host, src.Channel(), cfg)
		nw.At(hbh.Time(10+i*20), r.Join)
		members = append(members, r)
	}
	nw.RunFor(4000)
	res := nw.Probe(src.SendData, members...)
	if !res.Complete() {
		t.Fatalf("incomplete: %v", res)
	}
	if res.MaxLinkCopies() != 1 {
		t.Errorf("link duplication on converged HBH tree:\n%s", res.FormatTree(g))
	}
	for _, m := range members {
		want := hbh.Time(nw.Routing().Dist(hbh.ISPSourceHost, g.MustByAddr(m.Addr())))
		if got := res.Delays[m.Addr()]; got != want {
			t.Errorf("%v delay = %v, want shortest-path %v", m.Addr(), got, want)
		}
	}
}

func TestFacadeTopologies(t *testing.T) {
	if got := hbh.ISPTopology().NumNodes(); got != 36 {
		t.Errorf("ISP nodes = %d, want 36", got)
	}
	g := hbh.RandomTopology(20, 4, rand.New(rand.NewSource(2)))
	if len(g.Routers()) != 20 || !g.Connected() {
		t.Error("random topology broken")
	}
	if hbh.LineTopology(3).NumNodes() != 6 {
		t.Error("line topology broken")
	}
	if !hbh.Group(3).IsMulticast() {
		t.Error("Group not class-D")
	}
}

func TestFacadePIMBuilders(t *testing.T) {
	g := hbh.LineTopology(5)
	g.RandomizeCosts(rand.New(rand.NewSource(3)), 1, 10)
	nw := hbh.NewNetwork(g)
	members := []hbh.NodeID{g.Hosts()[2], g.Hosts()[4]}
	ss := nw.BuildPIMSS(g.Hosts()[0], hbh.Group(0), members)
	var ms []hbh.Member
	for _, m := range members {
		ms = append(ms, ss.Member(m))
	}
	res := nw.Probe(ss.SendData, ms...)
	if !res.Complete() {
		t.Fatalf("PIM-SS incomplete: %v", res)
	}

	nw2 := hbh.NewNetwork(g.Clone())
	g2 := nw2.Graph()
	members2 := []hbh.NodeID{g2.Hosts()[2], g2.Hosts()[4]}
	sm := nw2.BuildPIMSM(g2.Hosts()[0], hbh.Group(0), members2, 2)
	if sm.RP() != 2 {
		t.Errorf("RP = %d, want 2", sm.RP())
	}
	var ms2 []hbh.Member
	for _, m := range members2 {
		ms2 = append(ms2, sm.Member(m))
	}
	if res := nw2.Probe(sm.SendData, ms2...); !res.Complete() {
		t.Fatalf("PIM-SM incomplete: %v", res)
	}
}

func TestFacadeREUNITE(t *testing.T) {
	g := hbh.LineTopology(4)
	nw := hbh.NewNetwork(g)
	cfg := hbh.ReuniteConfig{JoinInterval: 100, TreeInterval: 100, T1: 350, T2: 350}
	nw.EnableREUNITE(cfg)
	src := nw.NewREUNITESource(g.Hosts()[0], hbh.Group(0), cfg)
	r := nw.NewREUNITEReceiver(g.Hosts()[3], src.Channel(), cfg)
	nw.At(5, r.Join)
	nw.RunFor(3000)
	res := nw.Probe(src.SendData, r)
	if !res.Complete() {
		t.Fatalf("incomplete: %v", res)
	}
}

func TestFacadeTrace(t *testing.T) {
	g := hbh.LineTopology(3)
	nw := hbh.NewNetwork(g)
	cfg := hbh.DefaultConfig()
	nw.EnableHBH(cfg)
	var lines []string
	nw.SetTrace(func(l string) { lines = append(lines, l) })
	src := nw.NewHBHSource(g.Hosts()[0], hbh.Group(0), cfg)
	r := nw.NewHBHReceiver(g.Hosts()[2], src.Channel(), cfg)
	nw.At(5, r.Join)
	nw.RunFor(300)
	if len(lines) == 0 {
		t.Fatal("no trace lines")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "join") {
		t.Error("trace missing join messages")
	}
	nw.SetTrace(nil) // must not panic
	nw.RunFor(100)
}

func TestFacadePartialDeployment(t *testing.T) {
	g := hbh.LineTopology(4)
	nw := hbh.NewNetwork(g)
	cfg := hbh.DefaultConfig()
	routers := nw.EnableHBHOn(cfg, []hbh.NodeID{0, 2})
	if len(routers) != 2 || routers[0] == nil || routers[2] == nil {
		t.Fatal("EnableHBHOn broken")
	}
	src := nw.NewHBHSource(g.Hosts()[0], hbh.Group(0), cfg)
	r := nw.NewHBHReceiver(g.Hosts()[3], src.Channel(), cfg)
	nw.At(5, r.Join)
	nw.RunFor(3000)
	res := nw.Probe(src.SendData, r)
	if !res.Complete() {
		t.Fatalf("partial deployment broke delivery: %v", res)
	}
}

func TestFacadeIGMP(t *testing.T) {
	g := hbh.LineTopology(3)
	nw := hbh.NewNetwork(g)
	cfg := hbh.DefaultConfig()
	routers := nw.EnableHBH(cfg)

	src := nw.NewHBHSource(g.Hosts()[0], hbh.Group(0), cfg)
	q, leaf := nw.EnableIGMP(2, routers[2], cfg, hbh.DefaultIGMPConfig())
	member := nw.NewIGMPHost(g.Hosts()[2], hbh.DefaultIGMPConfig())

	ch := src.Channel()
	nw.At(10, func() { member.Join(ch) })
	nw.RunFor(4000)

	if !q.HasMembers(ch) {
		t.Fatal("querier has no members")
	}
	if !leaf.Subscribed(ch) {
		t.Fatal("leaf not subscribed")
	}
	res := nw.Probe(src.SendData, member)
	if !res.Complete() {
		t.Fatalf("IGMP member not served: %v", res)
	}
}

func TestFacadeFigureHelpers(t *testing.T) {
	fig := hbh.Figure7a(2, 1)
	if fig.ID != "7a" || len(fig.Series) != 4 {
		t.Errorf("Figure7a = %s with %d series", fig.ID, len(fig.Series))
	}
}
