package hbh_test

// The benchmark harness regenerates every table/figure of the paper's
// evaluation (§4) as a testing.B benchmark, plus the ablation and
// extension studies from DESIGN.md, plus micro-benchmarks of the
// substrates. Figure benches run a reduced number of runs per data
// point per iteration (the CLI `hbhsim -figure all -runs 500` performs
// the full 500-run evaluation) and report the headline comparison as
// custom metrics, so `go test -bench` output directly shows who wins:
//
//	BenchmarkFigure7a  ...  HBH-cost 21.9  REUNITE-cost 31.2  ...
//
// Metric naming: <protocol>-cost is mean packet copies per data packet
// (tree cost), <protocol>-delay is mean receiver delay in time units.

import (
	"math/rand"
	"testing"

	"hbh/internal/eventsim"
	"hbh/internal/experiment"
	"hbh/internal/netsim"
	"hbh/internal/obs"
	"hbh/internal/packet"
	"hbh/internal/topology"
	"hbh/internal/unicast"

	root "hbh"
)

// benchRuns is the per-iteration run count of the figure benches: high
// enough for stable ordering between protocols, low enough that a
// bench iteration stays in seconds.
const benchRuns = 10

func reportSeries(b *testing.B, fig *experiment.Figure, suffix string) {
	b.Helper()
	for _, s := range fig.Series {
		b.ReportMetric(s.AvgMean(), s.Name+"-"+suffix)
	}
	if fig.BadRuns > 0 {
		b.ReportMetric(float64(fig.BadRuns), "bad-runs")
	}
}

// BenchmarkFigure7a regenerates Figure 7(a): tree cost vs group size
// on the ISP topology for PIM-SM, PIM-SS, REUNITE and HBH.
func BenchmarkFigure7a(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Figure7a(benchRuns, int64(i+1))
	}
	reportSeries(b, fig, "cost")
}

// BenchmarkFigure7b regenerates Figure 7(b): tree cost on the 50-node
// random topology.
func BenchmarkFigure7b(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Figure7b(benchRuns, int64(i+1))
	}
	reportSeries(b, fig, "cost")
}

// BenchmarkFigure8a regenerates Figure 8(a): receiver average delay on
// the ISP topology (the paper's "shared trees beat source reverse
// SPTs here" observation).
func BenchmarkFigure8a(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Figure8a(benchRuns, int64(i+1))
	}
	reportSeries(b, fig, "delay")
}

// BenchmarkFigure8b regenerates Figure 8(b): receiver average delay on
// the 50-node random topology.
func BenchmarkFigure8b(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Figure8b(benchRuns, int64(i+1))
	}
	reportSeries(b, fig, "delay")
}

// BenchmarkStability regenerates the §3/Figure 4 departure-stability
// comparison: route changes inflicted on remaining members per
// departure.
func BenchmarkStability(b *testing.B) {
	b.ReportAllocs()
	var res *experiment.StabilityResult
	for i := 0; i < b.N; i++ {
		res = experiment.StabilityExperiment(experiment.StabilityConfig{
			Topo: experiment.TopoISP, Receivers: 8, Runs: benchRuns, Seed: int64(i + 1),
		})
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.RouteChanged.Mean(), string(row.Protocol)+"-route-changes")
	}
}

// BenchmarkAblationFusion regenerates ablation A1: HBH with the fusion
// mechanism disabled degenerates to a unicast star; the cost gap is
// what fusion buys.
func BenchmarkAblationFusion(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.AblationFusion(benchRuns, int64(i+1))
	}
	reportSeries(b, fig, "cost")
}

// BenchmarkUnicastClouds regenerates extension A2: HBH and REUNITE
// tree cost as the fraction of multicast-capable routers varies.
func BenchmarkUnicastClouds(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.UnicastClouds(benchRuns, int64(i+1))
	}
	reportSeries(b, fig, "cost")
}

// BenchmarkAsymmetrySweep regenerates extension A3: the receiver-delay
// gap between HBH and the reverse-path protocols as per-direction cost
// skew grows.
func BenchmarkAsymmetrySweep(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.AsymmetrySweep(benchRuns, int64(i+1))
	}
	reportSeries(b, fig, "delay")
}

// BenchmarkForwardingState regenerates extension A4: data-plane and
// control-plane state footprint of the recursive-unicast protocols
// versus classical IP multicast.
func BenchmarkForwardingState(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.ForwardingState(benchRuns/2+1, int64(i+1))
	}
	reportSeries(b, fig, "entries")
}

// BenchmarkControlOverhead regenerates extension A5: steady-state
// control transmissions per refresh interval.
func BenchmarkControlOverhead(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.ControlOverhead(benchRuns/2+1, int64(i+1))
	}
	reportSeries(b, fig, "msgs")
}

// BenchmarkQoSRouting regenerates extension A7: delivered bottleneck
// bandwidth under a widest-path unicast substrate (HBH reaches the
// optimum; reverse-path trees do not).
func BenchmarkQoSRouting(b *testing.B) {
	b.ReportAllocs()
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.QoSRouting(benchRuns/2+1, int64(i+1))
	}
	reportSeries(b, fig, "bw")
}

// --- substrate micro-benchmarks ---

// BenchmarkSingleRunHBH measures one full HBH simulation run (ISP
// topology, 8 receivers: converge + probe).
func BenchmarkSingleRunHBH(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Run(experiment.RunConfig{
			Topo: experiment.TopoISP, Protocol: experiment.HBH,
			Receivers: 8, Seed: int64(i + 1),
		})
	}
}

// BenchmarkSingleRunREUNITE measures one full REUNITE run.
func BenchmarkSingleRunREUNITE(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Run(experiment.RunConfig{
			Topo: experiment.TopoISP, Protocol: experiment.REUNITE,
			Receivers: 8, Seed: int64(i + 1),
		})
	}
}

// BenchmarkSingleRunPIMSS measures one centralised PIM-SS run.
func BenchmarkSingleRunPIMSS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.Run(experiment.RunConfig{
			Topo: experiment.TopoISP, Protocol: experiment.PIMSS,
			Receivers: 8, Seed: int64(i + 1),
		})
	}
}

// BenchmarkManyChannels measures a network carrying ten concurrent HBH
// channels (distinct sources and groups) to convergence — per-channel
// state is independent, so this stresses the multiplexing overhead of
// the shared routers.
func BenchmarkManyChannels(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := root.ISPTopology()
		g.RandomizeCosts(rand.New(rand.NewSource(int64(i+1))), 1, 10)
		nw := root.NewNetwork(g)
		cfg := root.DefaultConfig()
		nw.EnableHBH(cfg)
		hosts := g.Hosts()
		var members []root.Member
		var sends []func(payload []byte) uint32
		for c := 0; c < 10; c++ {
			src := nw.NewHBHSource(hosts[c], root.Group(c), cfg)
			sends = append(sends, src.SendData)
			for k := 0; k < 5; k++ {
				r := nw.NewHBHReceiver(hosts[(c+3*k+5)%len(hosts)], src.Channel(), cfg)
				nw.At(root.Time(10+5*k), r.Join)
				members = append(members, r)
			}
		}
		nw.RunFor(4000)
		for _, send := range sends {
			send(nil)
		}
		nw.RunFor(200)
	}
}

// BenchmarkDijkstra measures the all-pairs routing-table computation
// on the 50-node topology (100 nodes with hosts).
func BenchmarkDijkstra(b *testing.B) {
	b.ReportAllocs()
	g := topology.Random(topology.Paper50(), rand.New(rand.NewSource(1)))
	g.RandomizeCosts(rand.New(rand.NewSource(2)), 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unicast.Compute(g)
	}
}

// BenchmarkDijkstraRecompute measures the steady-state table refresh:
// recomputing all-pairs routes into the tables' existing backing
// arrays (the path fault rerouting takes). The contrast with
// BenchmarkDijkstra is the point — Compute pays a one-time flat
// allocation; Recompute must be allocation-free.
func BenchmarkDijkstraRecompute(b *testing.B) {
	b.ReportAllocs()
	g := topology.Random(topology.Paper50(), rand.New(rand.NewSource(1)))
	g.RandomizeCosts(rand.New(rand.NewSource(2)), 1, 10)
	r := unicast.Compute(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Recompute()
	}
}

// lazyBenchGraph builds the 5000-router Barabási–Albert graph the lazy
// substrate benchmarks share — big enough that the eager fast path
// would never be selected, heavy-tailed like the A13 sweep.
func lazyBenchGraph() *topology.Graph {
	rng := rand.New(rand.NewSource(1))
	g := topology.BarabasiAlbert(topology.BAConfig{Routers: 5000, M: 2}, rng)
	g.RandomizeCosts(rand.New(rand.NewSource(2)), 1, 10)
	return g
}

// BenchmarkLazyNextHop measures the on-demand substrate's query path
// over a rotating set of sources sized to the LRU, so steady state is
// all cache hits — the per-query price of the lazy indirection, to be
// read against the first iteration's miss cost (amortized away here).
func BenchmarkLazyNextHop(b *testing.B) {
	b.ReportAllocs()
	g := lazyBenchGraph()
	l := unicast.NewLazy(g, unicast.LazyOptions{MaxSources: 64})
	routers := g.Routers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := routers[i%64]
		d := routers[(i*7919)%len(routers)]
		_ = l.NextHop(s, d)
	}
}

// BenchmarkLazyRecomputeChurn measures the per-source invalidation
// path under steady cost churn: each iteration bumps one link cost
// through the graph and pushes the change through
// RecomputeCostChanges, which drops only the cached sources the change
// can affect; the next queries fault those rows back in. This is the
// workload the adversarial engine's churner generates.
func BenchmarkLazyRecomputeChurn(b *testing.B) {
	b.ReportAllocs()
	g := lazyBenchGraph()
	l := unicast.NewLazy(g, unicast.LazyOptions{MaxSources: 64})
	routers := g.Routers()
	// Warm the LRU to capacity.
	for i := 0; i < 64; i++ {
		_ = l.NextHop(routers[i], routers[(i+1)%len(routers)])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := routers[i%64]
		nbs := g.Neighbors(u)
		nb := nbs[i%len(nbs)]
		oldAB, oldBA := nb.Cost, g.Cost(nb.To, u)
		g.SetLinkCost(u, nb.To, 1+(oldAB+1)%10, oldBA)
		l.RecomputeCostChanges(unicast.CostChange{A: u, B: nb.To, OldAB: oldAB, OldBA: oldBA})
		_ = l.NextHop(u, nb.To)
	}
}

// forwardOneHopSetup builds the one-link forwarding fixture shared by
// the hot-path benchmarks: one data packet crossing one link
// (schedule, transmit, arrive, deliver) with no protocol handlers
// attached.
func forwardOneHopSetup() (*eventsim.Sim, *netsim.Network, *packet.Data, *int) {
	g := topology.Line(2, false)
	sim := eventsim.New()
	net := netsim.New(sim, g, unicast.Compute(g))
	delivered := new(int)
	net.Node(1).SetDeliver(func(netsim.ProtoNode, packet.Message) { *delivered++ })
	msg := &packet.Data{
		Header: packet.Header{
			Type:    packet.TypeData,
			Channel: root.Channel{S: 0x0A000001, G: 0xE0000001},
			Dst:     g.Node(1).Addr,
		},
	}
	return sim, net, msg, delivered
}

// BenchmarkForwardOneHop measures the zero-copy per-hop forwarding
// path in isolation with observability disabled. The acceptance bar
// for the obs layer is that this stays at 0 allocs/op: the disabled
// path must not box event arguments or touch the observer at all (see
// TestForwardDisabledObsZeroAlloc for the hard assertion).
func BenchmarkForwardOneHop(b *testing.B) {
	b.ReportAllocs()
	sim, net, msg, delivered := forwardOneHopSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Node(0).SendUnicast(msg)
		if err := sim.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
	if *delivered != b.N {
		b.Fatalf("delivered %d of %d", *delivered, b.N)
	}
}

// BenchmarkForwardOneHopObs is the same hop with the observability
// pipeline attached (counters + flight recorder, no sinks): the price
// of turning observation on, to be read against BenchmarkForwardOneHop
// for the enabled/disabled delta.
func BenchmarkForwardOneHopObs(b *testing.B) {
	b.ReportAllocs()
	sim, net, msg, delivered := forwardOneHopSetup()
	o := obs.New(sim.Now)
	o.EnableCounters()
	o.EnableRecorder(obs.DefaultRecorderDepth)
	net.SetObserver(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Node(0).SendUnicast(msg)
		if err := sim.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
	if *delivered != b.N {
		b.Fatalf("delivered %d of %d", *delivered, b.N)
	}
}

// BenchmarkForwardOneHopTraced is the same hop with full causal
// tracing on top of the obs pipeline: counters, convergence tracker
// and episode builder attached, and every send rooted in a causal
// episode so each hop is stamped, attributed and retained. The delta
// against BenchmarkForwardOneHopObs is the price of causal attribution
// specifically; the delta against BenchmarkForwardOneHop is the whole
// observability bill.
func BenchmarkForwardOneHopTraced(b *testing.B) {
	b.ReportAllocs()
	sim, net, msg, delivered := forwardOneHopSetup()
	o := obs.New(sim.Now)
	o.EnableCounters()
	o.EnableConvergence()
	o.AddSink(obs.NewEpisodeBuilder(64))
	net.SetObserver(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := net.Node(0).RootEpisode()
		net.Node(0).SendUnicast(msg)
		net.Node(0).SetCausalContext(prev)
		if err := sim.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
	if *delivered != b.N {
		b.Fatalf("delivered %d of %d", *delivered, b.N)
	}
}

// BenchmarkForwardOneHopHist is the same hop with the wall/virtual
// latency tracker attached on top of counters: every delivery lands in
// the log-bucketed delivery-delay histogram and every hop in the
// per-hop histogram. The delta against BenchmarkForwardOneHopObs is
// the price of histogram observation; the disabled path is still
// pinned at 0 allocs/op by TestForwardDisabledObsZeroAlloc.
func BenchmarkForwardOneHopHist(b *testing.B) {
	b.ReportAllocs()
	sim, net, msg, delivered := forwardOneHopSetup()
	o := obs.New(sim.Now)
	o.EnableCounters()
	lat := o.EnableLatency()
	net.SetObserver(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Node(0).SendUnicast(msg)
		if err := sim.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
	if *delivered != b.N {
		b.Fatalf("delivered %d of %d", *delivered, b.N)
	}
	if got := lat.Delivery.Count(); got != uint64(b.N) {
		b.Fatalf("delivery histogram counted %d of %d", got, b.N)
	}
}

// TestForwardDisabledObsZeroAlloc pins the acceptance criterion as a
// test, not just a benchmark number: with no observer installed, the
// per-hop forwarding path performs zero heap allocations.
func TestForwardDisabledObsZeroAlloc(t *testing.T) {
	sim, net, msg, _ := forwardOneHopSetup()
	// Warm the envelope freelist (the first hop allocates its envelope).
	net.Node(0).SendUnicast(msg)
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		net.Node(0).SendUnicast(msg)
		if err := sim.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled-obs forwarding path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkPacketRoundTrip measures marshal+unmarshal of a fusion
// message (the largest control format).
func BenchmarkPacketRoundTrip(b *testing.B) {
	b.ReportAllocs()
	f := &packet.Fusion{
		Header: packet.Header{
			Proto:   packet.ProtoHBH,
			Type:    packet.TypeFusion,
			Channel: root.Channel{S: 0x0A000001, G: 0xE0000001},
			Src:     0x0A000002,
			Dst:     0x0A000001,
		},
		Bp: 0x0A000002,
		Rs: []root.Addr{0x0A010001, 0x0A010002, 0x0A010003, 0x0A010004},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := packet.Marshal(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := packet.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventLoop measures raw discrete-event throughput: schedule
// and fire chained events.
func BenchmarkEventLoop(b *testing.B) {
	b.ReportAllocs()
	sim := eventsim.New()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			sim.After(1, chain)
		}
	}
	sim.After(1, chain)
	b.ResetTimer()
	if err := sim.RunAll(); err != nil {
		b.Fatal(err)
	}
}
