module hbh

go 1.22
