package hbh

import (
	"math/rand"

	"hbh/internal/addr"
	"hbh/internal/core"
	"hbh/internal/eventsim"
	"hbh/internal/experiment"
	"hbh/internal/igmp"
	"hbh/internal/mtree"
	"hbh/internal/netsim"
	"hbh/internal/pim"
	"hbh/internal/reunite"
	"hbh/internal/topology"
	"hbh/internal/unicast"
)

// Aliases re-exporting the implementation types that make up the
// public API surface.
type (
	// Addr is a 32-bit IPv4-style unicast or class-D address.
	Addr = addr.Addr
	// Channel is the source-specific channel <S, G>.
	Channel = addr.Channel
	// Graph is a network topology with per-direction link costs.
	Graph = topology.Graph
	// NodeID identifies a node within a Graph.
	NodeID = topology.NodeID
	// Config carries HBH's soft-state timing constants.
	Config = core.Config
	// ReuniteConfig carries REUNITE's timing constants.
	ReuniteConfig = reunite.Config
	// Source is an HBH channel root.
	Source = core.Source
	// Receiver is an HBH member agent.
	Receiver = core.Receiver
	// Router is an HBH protocol engine on one router.
	Router = core.Router
	// ProbeResult is one tree measurement (cost, per-link copies,
	// per-member delays).
	ProbeResult = mtree.Result
	// Member is the receiver view used by tree probes.
	Member = mtree.Member
	// Time is virtual simulation time in cost units.
	Time = eventsim.Time
)

// DefaultConfig returns the HBH protocol timing used throughout the
// paper reproduction.
func DefaultConfig() Config { return core.DefaultConfig() }

// ISPSourceHost is the fixed multicast source of the ISP experiments
// (node 18 of the paper's Figure 6: the host attached to router 0).
const ISPSourceHost = topology.ISPSourceHost

// ISPTopology builds the paper's Figure 6 evaluation topology: 18
// routers with one potential-receiver host each.
func ISPTopology() *Graph { return topology.ISP() }

// RandomTopology builds a connected random topology with the given
// router count and average degree, one host per router, using rng.
// The paper's 50-node topology is RandomTopology(50, 8.6, rng).
func RandomTopology(routers int, avgDegree float64, rng *rand.Rand) *Graph {
	return topology.Random(topology.RandomConfig{
		Routers: routers, AvgDegree: avgDegree, Hosts: true,
	}, rng)
}

// LineTopology builds a chain of n routers with one host each — handy
// for experiments and tests.
func LineTopology(n int) *Graph { return topology.Line(n, true) }

// Group returns the conventional class-D group address number i.
func Group(i int) Addr { return addr.GroupAddr(i) }

// Network bundles a topology, its unicast routing tables, the
// discrete-event clock and the packet transport into one simulated
// network ready for protocol agents.
type Network struct {
	sim     *eventsim.Sim
	graph   *topology.Graph
	routing unicast.Router
	net     *netsim.Network
}

// NewNetwork builds the delay-shortest routing substrate for g and the
// simulator over it. Small graphs get the eager all-pairs fast path,
// large ones the lazy per-source router (see unicast.New). The graph's
// costs must be final: mutate costs before this call.
func NewNetwork(g *Graph) *Network {
	return NewNetworkWithRouting(g, unicast.New(g))
}

// NewNetworkWithRouting builds the simulator over a pre-computed
// routing substrate — e.g. unicast.ComputeWidest for the QoS
// substrate. The substrate must have been computed for g.
func NewNetworkWithRouting(g *Graph, routing unicast.Router) *Network {
	sim := eventsim.New()
	return &Network{
		sim:     sim,
		graph:   g,
		routing: routing,
		net:     netsim.New(sim, g, routing),
	}
}

// Graph returns the topology.
func (nw *Network) Graph() *Graph { return nw.graph }

// Routing exposes the unicast routing substrate (shortest-path
// distances, next hops, full paths).
func (nw *Network) Routing() unicast.Router { return nw.routing }

// Inner returns the underlying netsim network for advanced use (taps,
// traces, custom handlers).
func (nw *Network) Inner() *netsim.Network { return nw.net }

// Now returns the current virtual time.
func (nw *Network) Now() Time { return nw.sim.Now() }

// RunFor advances the simulation by d time units, executing protocol
// events.
func (nw *Network) RunFor(d Time) {
	if err := nw.sim.Run(nw.sim.Now() + d); err != nil {
		panic(err)
	}
}

// At schedules fn at absolute virtual time t (e.g. staggered joins).
func (nw *Network) At(t Time, fn func()) { nw.sim.At(t, fn) }

// SetTrace installs a human-readable event tracer (nil removes it).
func (nw *Network) SetTrace(fn func(line string)) {
	if fn == nil {
		nw.net.SetTrace(nil)
		return
	}
	nw.net.SetTrace(fn)
}

// EnableHBH attaches an HBH protocol engine to every router and
// returns the handles keyed by node. To model partial deployment
// (unicast clouds), use EnableHBHOn instead.
func (nw *Network) EnableHBH(cfg Config) map[NodeID]*Router {
	return nw.EnableHBHOn(cfg, nw.graph.Routers())
}

// EnableHBHOn attaches HBH engines only on the given routers; all
// other routers stay unicast-only and are traversed transparently.
func (nw *Network) EnableHBHOn(cfg Config, routers []NodeID) map[NodeID]*Router {
	out := make(map[NodeID]*Router, len(routers))
	for _, r := range routers {
		out[r] = core.AttachRouter(nw.net.Node(r), cfg)
	}
	return out
}

// NewHBHSource roots an HBH channel <host's address, group> at the
// given host and starts its tree refresh.
func (nw *Network) NewHBHSource(host NodeID, group Addr, cfg Config) *Source {
	return core.AttachSource(nw.net.Node(host), group, cfg)
}

// NewHBHReceiver creates a (not yet joined) HBH member agent on host.
func (nw *Network) NewHBHReceiver(host NodeID, ch Channel, cfg Config) *Receiver {
	return core.AttachReceiver(nw.net.Node(host), ch, cfg)
}

// EnableREUNITE attaches a REUNITE engine to every router.
func (nw *Network) EnableREUNITE(cfg ReuniteConfig) {
	for _, r := range nw.graph.Routers() {
		reunite.AttachRouter(nw.net.Node(r), cfg)
	}
}

// NewREUNITESource roots a REUNITE channel at the given host.
func (nw *Network) NewREUNITESource(host NodeID, group Addr, cfg ReuniteConfig) *reunite.Source {
	return reunite.AttachSource(nw.net.Node(host), group, cfg)
}

// NewREUNITEReceiver creates a REUNITE member agent on host.
func (nw *Network) NewREUNITEReceiver(host NodeID, ch Channel, cfg ReuniteConfig) *reunite.Receiver {
	return reunite.AttachReceiver(nw.net.Node(host), ch, cfg)
}

// BuildPIMSS installs a PIM-SS-style source tree (reverse SPT) for the
// given member hosts.
func (nw *Network) BuildPIMSS(sourceHost NodeID, group Addr, members []NodeID) *pim.Session {
	return pim.Build(nw.net, pim.SS, sourceHost, group, members, topology.None)
}

// BuildPIMSM installs a PIM-SM-style shared tree. Pass topology.None
// as rp for the delay-optimal default.
func (nw *Network) BuildPIMSM(sourceHost NodeID, group Addr, members []NodeID, rp NodeID) *pim.Session {
	return pim.Build(nw.net, pim.SM, sourceHost, group, members, rp)
}

// Probe injects one data packet via send and measures the resulting
// distribution tree: total packet copies (tree cost), per-link copies,
// and per-member delays.
func (nw *Network) Probe(send func(payload []byte) uint32, members ...Member) *ProbeResult {
	return mtree.Probe(nw.net, func() uint32 { return send(nil) }, members)
}

// IGMP-layer aliases: local membership between hosts and their border
// router (the paper's receiver attachment model).
type (
	// IGMPConfig carries the local membership protocol's timing.
	IGMPConfig = igmp.Config
	// IGMPHost is the end-system membership agent (reports, query
	// responses, delivery recording). It implements Member.
	IGMPHost = igmp.Host
	// IGMPQuerier is the router-side membership tracker.
	IGMPQuerier = igmp.Querier
	// LeafAgent aggregates a router's local IGMP members behind one
	// HBH channel subscription.
	LeafAgent = core.LeafAgent
)

// DefaultIGMPConfig returns the local-membership timing used by the
// examples and tests.
func DefaultIGMPConfig() IGMPConfig { return igmp.DefaultConfig() }

// EnableIGMP turns router into an IGMP-serving border router wired
// into HBH: local membership reports subscribe the router to the
// channel, and channel data fans out to the local member hosts.
// hbhRouter is the handle returned by EnableHBH/EnableHBHOn for that
// node (nil if the router is unicast-only — the leaf agent then claims
// channel data itself). cfg is the HBH timing for the subscription.
func (nw *Network) EnableIGMP(router NodeID, hbhRouter *Router, cfg Config, icfg IGMPConfig) (*IGMPQuerier, *LeafAgent) {
	q := igmp.AttachQuerier(nw.net.Node(router), icfg)
	l := core.AttachLeafAgent(nw.net.Node(router), q, hbhRouter, cfg)
	return q, l
}

// NewIGMPHost creates the membership agent on an end host.
func (nw *Network) NewIGMPHost(host NodeID, icfg IGMPConfig) *IGMPHost {
	return igmp.AttachHost(nw.net.Node(host), icfg)
}

// Experiment harness re-exports: regenerate the paper's figures
// programmatically. See cmd/hbhsim for the command-line front end.
type (
	// Figure is an aggregated experiment sweep (one paper figure).
	Figure = experiment.Figure
	// StabilityResult is the Fig. 4 departure comparison.
	StabilityResult = experiment.StabilityResult
)

// Figure7a..Figure8b regenerate the corresponding paper figures with
// the given run count per data point (the paper uses 500).
var (
	Figure7a = experiment.Figure7a
	Figure7b = experiment.Figure7b
	Figure8a = experiment.Figure8a
	Figure8b = experiment.Figure8b
)
