package hbh_test

import (
	"fmt"
	"math/rand"

	"hbh"
)

// Example builds a small network, joins two receivers to an HBH
// channel, lets the soft state converge and measures the distribution
// tree of one data packet. The simulator is fully deterministic, so
// the measured tree is reproducible.
func Example() {
	g := hbh.LineTopology(4) // R0-R1-R2-R3, one host each
	g.RandomizeCosts(rand.New(rand.NewSource(7)), 1, 10)

	nw := hbh.NewNetwork(g)
	cfg := hbh.DefaultConfig()
	nw.EnableHBH(cfg)

	src := nw.NewHBHSource(g.Hosts()[0], hbh.Group(0), cfg)
	r1 := nw.NewHBHReceiver(g.Hosts()[2], src.Channel(), cfg)
	r2 := nw.NewHBHReceiver(g.Hosts()[3], src.Channel(), cfg)
	nw.At(10, r1.Join)
	nw.At(30, r2.Join)

	nw.RunFor(4000) // converge

	res := nw.Probe(src.SendData, r1, r2)
	fmt.Printf("complete=%v copiesPerLink=%d\n", res.Complete(), res.MaxLinkCopies())
	for _, m := range []hbh.Member{r1, r2} {
		sp := nw.Routing().Dist(g.Hosts()[0], g.MustByAddr(m.Addr()))
		fmt.Printf("%v delay=%v shortestPossible=%d\n", m.Addr(), res.Delays[m.Addr()], sp)
	}
	// Output:
	// complete=true copiesPerLink=1
	// 10.1.0.2 delay=16 shortestPossible=16
	// 10.1.0.3 delay=18 shortestPossible=18
}
